//! The paper's §3 formal model, executable: a core calculus with
//! `private` and `dynamic` sharing modes, the static typing judgments
//! of Fig. 4 (which insert `when chkread/chkwrite/oneref` guards),
//! and the small-step parallel operational semantics of Figs. 5–6.
//!
//! [`explore`] enumerates *every* interleaving of a bounded program
//! and verifies the soundness theorem of §3.4 on each trace:
//!
//! * private cells are only accessed by the thread that owns them;
//! * no two threads race on a dynamic cell (access with at least one
//!   write) unless an intervening sharing cast reset it.
//!
//! The oracle used for the second property is independent of the
//! inserted checks, so it genuinely tests that the checks are
//! load-bearing: type-checking a racy program without guards makes
//! the oracle fire (see the tests).

use std::collections::{BTreeMap, HashSet};
use std::fmt;

/// A sharing mode of the core calculus. The paper's §3 model uses
/// `private` and `dynamic`; per its remark that "the formalism is
/// readily extendable to include locked, readonly, and racy", this
/// implementation also carries `locked(l)` over a fixed set of lock
/// identities.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Mode {
    Private,
    Dynamic,
    /// Protected by lock `l` (an index below [`FProgram::n_locks`]).
    Locked(u8),
}

impl Mode {
    /// True for modes visible to more than one thread.
    pub fn is_shared(self) -> bool {
        !matches!(self, Mode::Private)
    }
}

impl fmt::Display for Mode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Mode::Private => write!(f, "private"),
            Mode::Dynamic => write!(f, "dynamic"),
            Mode::Locked(l) => write!(f, "locked(l{l})"),
        }
    }
}

/// A core type `m s` where `s ::= int | ref t`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct FType {
    pub mode: Mode,
    pub shape: Shape,
}

/// Type shapes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Shape {
    Int,
    Ref(Box<FType>),
}

impl FType {
    /// `m int`
    pub fn int(mode: Mode) -> Self {
        FType {
            mode,
            shape: Shape::Int,
        }
    }

    /// `m ref t`
    pub fn reft(mode: Mode, inner: FType) -> Self {
        FType {
            mode,
            shape: Shape::Ref(Box::new(inner)),
        }
    }

    /// The referenced type, if a reference.
    pub fn target(&self) -> Option<&FType> {
        match &self.shape {
            Shape::Ref(t) => Some(t),
            Shape::Int => None,
        }
    }
}

/// An l-expression `x` or `*x`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum LVal {
    Var(String),
    Deref(String),
}

impl fmt::Display for LVal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LVal::Var(x) => write!(f, "{x}"),
            LVal::Deref(x) => write!(f, "*{x}"),
        }
    }
}

/// A right-hand side expression.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RExpr {
    L(LVal),
    Const(i64),
    Null,
    New(FType),
    /// `scast_t x` — changes the referent's mode; nulls `x`.
    Scast(FType, String),
}

/// A statement of the core language.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FStmt {
    Assign(LVal, RExpr),
    Spawn(String),
    /// Blocks until lock `l` is free, then takes it.
    Acquire(u8),
    /// Releases lock `l`; the thread fails if it does not hold it.
    Release(u8),
    Skip,
}

/// A thread definition: named locals and a straight-line body.
#[derive(Debug, Clone)]
pub struct ThreadDef {
    pub name: String,
    pub locals: Vec<(String, FType)>,
    pub body: Vec<FStmt>,
}

/// A program: globals plus thread definitions. Thread `main` runs
/// first.
#[derive(Debug, Clone, Default)]
pub struct FProgram {
    pub globals: Vec<(String, FType)>,
    pub threads: Vec<ThreadDef>,
    /// Number of locks available to `Mode::Locked` / acquire/release.
    pub n_locks: u8,
}

/// Runtime guards inserted by type checking (Fig. 4's `when` clauses,
/// plus the held-lock check of the `locked` extension).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Guard {
    ChkRead(LVal),
    ChkWrite(LVal),
    OneRef(String),
    /// The thread must hold lock `l` to proceed.
    ChkHeld(u8),
}

/// A checked statement: guards then the action.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct CheckedStmt {
    pub guards: Vec<Guard>,
    pub stmt: FStmt,
}

/// A checked thread: name, locals, and guarded body.
pub type CheckedThread = (String, Vec<(String, FType)>, Vec<CheckedStmt>);

/// A type-checked program with inserted runtime checks.
#[derive(Debug, Clone)]
pub struct CheckedProgram {
    pub globals: Vec<(String, FType)>,
    pub threads: Vec<CheckedThread>,
    pub n_locks: u8,
}

/// A static type error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError(pub String);

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.0)
    }
}

impl std::error::Error for TypeError {}

// ----- static semantics (Fig. 4) -----

/// Checks a program and inserts runtime guards.
///
/// # Errors
///
/// Returns the first violation of the typing rules: a global that is
/// not `dynamic`, a `dynamic ref private` type (REF-CTOR), a shape
/// mismatch in an assignment, or an illegal cast.
pub fn typecheck(p: &FProgram) -> Result<CheckedProgram, TypeError> {
    // Rule (global): globals use a shared mode (dynamic, or locked in
    // the extension).
    for (x, t) in &p.globals {
        if !t.mode.is_shared() {
            return Err(TypeError(format!(
                "global `{x}` must be shared (dynamic/locked)"
            )));
        }
        check_locks(t, p.n_locks)?;
        wf(t)?;
    }
    let thread_names: HashSet<&str> = p.threads.iter().map(|t| t.name.as_str()).collect();
    let mut out = Vec::new();
    for td in &p.threads {
        for (x, t) in &td.locals {
            check_locks(t, p.n_locks)?;
            wf(t).map_err(|e| TypeError(format!("local `{x}`: {}", e.0)))?;
        }
        let env: BTreeMap<&str, &FType> = p
            .globals
            .iter()
            .chain(td.locals.iter())
            .map(|(x, t)| (x.as_str(), t))
            .collect();
        let mut body = Vec::new();
        for s in &td.body {
            body.push(check_stmt(s, &env, &thread_names, p.n_locks)?);
        }
        out.push((td.name.clone(), td.locals.clone(), body));
    }
    if !p.threads.iter().any(|t| t.name == "main") {
        return Err(TypeError("no `main` thread".into()));
    }
    Ok(CheckedProgram {
        globals: p.globals.clone(),
        threads: out,
        n_locks: p.n_locks,
    })
}

/// Every `Locked(l)` in the type must name a declared lock.
fn check_locks(t: &FType, n_locks: u8) -> Result<(), TypeError> {
    if let Mode::Locked(l) = t.mode {
        if l >= n_locks {
            return Err(TypeError(format!("unknown lock l{l}")));
        }
    }
    if let Shape::Ref(inner) = &t.shape {
        check_locks(inner, n_locks)?;
    }
    Ok(())
}

/// Rule (ref ctor): no shared reference to a private type.
fn wf(t: &FType) -> Result<(), TypeError> {
    if let Shape::Ref(inner) = &t.shape {
        if t.mode.is_shared() && inner.mode == Mode::Private {
            return Err(TypeError(
                "ill-formed type: shared ref to private target".into(),
            ));
        }
        wf(inner)?;
    }
    Ok(())
}

fn lval_type(lv: &LVal, env: &BTreeMap<&str, &FType>) -> Result<FType, TypeError> {
    match lv {
        LVal::Var(x) => env
            .get(x.as_str())
            .map(|t| (*t).clone())
            .ok_or_else(|| TypeError(format!("unknown variable `{x}`"))),
        LVal::Deref(x) => {
            let t = env
                .get(x.as_str())
                .ok_or_else(|| TypeError(format!("unknown variable `{x}`")))?;
            // Rule (deref): the pointer variable must be private so no
            // other thread can change it between check and access.
            if t.mode != Mode::Private {
                return Err(TypeError(format!(
                    "`*{x}`: dereferenced variable must be private"
                )));
            }
            t.target()
                .cloned()
                .ok_or_else(|| TypeError(format!("`{x}` is not a reference")))
        }
    }
}

fn read_guard(lv: &LVal, t: &FType) -> Option<Guard> {
    match t.mode {
        Mode::Dynamic => Some(Guard::ChkRead(lv.clone())),
        Mode::Locked(l) => Some(Guard::ChkHeld(l)),
        Mode::Private => None,
    }
}

fn write_guard(lv: &LVal, t: &FType) -> Option<Guard> {
    match t.mode {
        Mode::Dynamic => Some(Guard::ChkWrite(lv.clone())),
        Mode::Locked(l) => Some(Guard::ChkHeld(l)),
        Mode::Private => None,
    }
}

fn check_stmt(
    s: &FStmt,
    env: &BTreeMap<&str, &FType>,
    threads: &HashSet<&str>,
    n_locks: u8,
) -> Result<CheckedStmt, TypeError> {
    match s {
        FStmt::Skip => Ok(CheckedStmt {
            guards: vec![],
            stmt: s.clone(),
        }),
        FStmt::Acquire(l) | FStmt::Release(l) => {
            if *l >= n_locks {
                return Err(TypeError(format!("unknown lock l{l}")));
            }
            Ok(CheckedStmt {
                guards: vec![],
                stmt: s.clone(),
            })
        }
        FStmt::Spawn(f) => {
            if !threads.contains(f.as_str()) {
                return Err(TypeError(format!("spawn of unknown thread `{f}`")));
            }
            Ok(CheckedStmt {
                guards: vec![],
                stmt: s.clone(),
            })
        }
        FStmt::Assign(lhs, rhs) => {
            let tl = lval_type(lhs, env)?;
            let mut guards = Vec::new();
            match rhs {
                RExpr::Const(_) => {
                    if tl.shape != Shape::Int {
                        return Err(TypeError("integer assigned to reference".into()));
                    }
                }
                RExpr::Null | RExpr::New(_) => {
                    let Shape::Ref(target) = &tl.shape else {
                        return Err(TypeError("pointer value assigned to int".into()));
                    };
                    if let RExpr::New(t) = rhs {
                        if t != &**target {
                            return Err(TypeError("allocation type mismatch".into()));
                        }
                    }
                }
                RExpr::L(src) => {
                    let tr = lval_type(src, env)?;
                    // Rule (assign): both sides share the same shape
                    // `s`; their own modes m1/m2 may differ (copying a
                    // value between differently-moded cells is fine),
                    // but for references the referent type — deeper
                    // modes included — is invariant.
                    if tl.shape != tr.shape {
                        return Err(TypeError(format!(
                            "assignment type mismatch: {lhs} and {src}"
                        )));
                    }
                    if let Some(g) = read_guard(src, &tr) {
                        guards.push(g);
                    }
                }
                RExpr::Scast(t, x) => {
                    // Rule (cast-assign): t := scast_t x. x must be a
                    // private reference; only the referent's own mode
                    // may change; deeper structure is invariant.
                    let tx = env
                        .get(x.as_str())
                        .ok_or_else(|| TypeError(format!("unknown variable `{x}`")))?;
                    if tx.mode != Mode::Private {
                        return Err(TypeError(format!(
                            "scast source `{x}` must be a private variable"
                        )));
                    }
                    let Some(src_target) = tx.target() else {
                        return Err(TypeError(format!("`{x}` is not a reference")));
                    };
                    let Shape::Ref(dst_target) = &tl.shape else {
                        return Err(TypeError("scast result assigned to int".into()));
                    };
                    if t != &**dst_target {
                        return Err(TypeError("scast type must match destination".into()));
                    }
                    if t.shape != src_target.shape || deep_modes_differ(&t.shape, &src_target.shape)
                    {
                        return Err(TypeError(
                            "scast may only change the referent's own mode".into(),
                        ));
                    }
                    guards.push(Guard::OneRef(x.clone()));
                }
            }
            if let Some(g) = write_guard(lhs, &tl) {
                guards.push(g);
            }
            Ok(CheckedStmt {
                guards,
                stmt: s.clone(),
            })
        }
    }
}

/// True if any mode *below* the top level differs.
fn deep_modes_differ(a: &Shape, b: &Shape) -> bool {
    match (a, b) {
        (Shape::Ref(x), Shape::Ref(y)) => x.mode != y.mode || deep_modes_differ(&x.shape, &y.shape),
        _ => false,
    }
}

// ----- dynamic semantics (Figs. 5 and 6) -----

/// A memory cell: value, type, owner, and reader/writer sets — the
/// paper's `M : l -> Z x t x l x P(l) x P(l)`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cell {
    pub value: i64,
    pub ty: FType,
    pub owner: usize,
    pub readers: u64,
    pub writers: u64,
}

/// One thread: its environment and remaining work.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ThreadState {
    pub id: usize,
    pub env: BTreeMap<String, usize>,
    /// Remaining statements; the head may have guards left to run.
    pub body: Vec<CheckedStmt>,
    pub pc: usize,
    /// Guards of the current statement already discharged.
    pub guards_done: usize,
    pub failed: bool,
    /// Locks currently held (the extension's held-lock log).
    pub held: Vec<u8>,
}

impl ThreadState {
    /// True if the thread has no more work.
    pub fn done(&self) -> bool {
        self.failed || self.pc >= self.body.len()
    }
}

/// A whole-machine state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct State {
    pub memory: Vec<Cell>,
    pub threads: Vec<ThreadState>,
    /// Lock owner (thread id) per lock.
    pub locks: Vec<Option<usize>>,
}

/// Everything observed during one transition, fed to the soundness
/// oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Observation {
    Read { addr: usize, tid: usize },
    Write { addr: usize, tid: usize },
    CastReset { addr: usize },
    None,
}

/// Builds the initial state: globals allocated with owner 0 (no
/// owner), a single `main` thread with its locals.
pub fn initial_state(p: &CheckedProgram) -> State {
    let mut memory = Vec::new();
    let mut genv = BTreeMap::new();
    for (x, t) in &p.globals {
        genv.insert(x.clone(), memory.len());
        memory.push(Cell {
            value: 0,
            ty: t.clone(),
            owner: 0,
            readers: 0,
            writers: 0,
        });
    }
    let mut st = State {
        memory,
        threads: Vec::new(),
        locks: vec![None; p.n_locks as usize],
    };
    spawn_thread(&mut st, p, "main", &genv);
    st
}

fn spawn_thread(st: &mut State, p: &CheckedProgram, name: &str, genv: &BTreeMap<String, usize>) {
    let (_, locals, body) = p
        .threads
        .iter()
        .find(|(n, _, _)| n == name)
        .expect("thread exists (typechecked)");
    let id = st.threads.len() + 1;
    let mut env = genv.clone();
    for (x, t) in locals {
        env.insert(x.clone(), st.memory.len());
        st.memory.push(Cell {
            value: 0,
            ty: t.clone(),
            owner: id,
            readers: 0,
            writers: 0,
        });
    }
    st.threads.push(ThreadState {
        id,
        env,
        body: body.clone(),
        pc: 0,
        guards_done: 0,
        failed: false,
        held: Vec::new(),
    });
}

fn genv_of(p: &CheckedProgram) -> BTreeMap<String, usize> {
    // Globals were allocated first, in order.
    p.globals
        .iter()
        .enumerate()
        .map(|(i, (x, _))| (x.clone(), i))
        .collect()
}

fn addr_of(st: &State, t: &ThreadState, lv: &LVal) -> Option<usize> {
    match lv {
        LVal::Var(x) => t.env.get(x).copied(),
        LVal::Deref(x) => {
            let a = t.env.get(x).copied()?;
            let v = st.memory[a].value;
            if v <= 0 {
                None // null dereference -> fail
            } else {
                Some((v - 1) as usize)
            }
        }
    }
}

/// Executes one small step of thread `ti` in `st`, returning the new
/// state and what was observed. Returns `None` if the thread cannot
/// step (it is done).
pub fn step(p: &CheckedProgram, st: &State, ti: usize) -> Option<(State, Vec<Observation>)> {
    let t = &st.threads[ti];
    if t.done() {
        return None;
    }
    let cs = &t.body[t.pc];
    // An acquire of a lock held by another thread is not enabled: the
    // thread blocks (no transition).
    if t.guards_done >= cs.guards.len() {
        if let FStmt::Acquire(l) = &cs.stmt {
            if let Some(owner) = st.locks[*l as usize] {
                if owner != t.id {
                    return None;
                }
                // Re-acquiring a lock we hold: fail (non-recursive).
                let mut st2 = st.clone();
                st2.threads[ti].failed = true;
                return Some((st2, vec![]));
            }
        }
    }
    let mut st2 = st.clone();
    let tid = t.id;

    // Discharge the next guard, if any (one guard per step, so guard
    // interleavings are explored too).
    if t.guards_done < cs.guards.len() {
        let g = &cs.guards[t.guards_done];
        let obs = match g {
            Guard::ChkRead(lv) => {
                let Some(a) = addr_of(st, t, lv) else {
                    st2.threads[ti].failed = true;
                    return Some((st2, vec![]));
                };
                let cell = &mut st2.memory[a];
                // chkread: no *other* writer.
                if cell.writers & !(1 << tid) != 0 {
                    st2.threads[ti].failed = true;
                    return Some((st2, vec![]));
                }
                cell.readers |= 1 << tid;
                Observation::None
            }
            Guard::ChkWrite(lv) => {
                let Some(a) = addr_of(st, t, lv) else {
                    st2.threads[ti].failed = true;
                    return Some((st2, vec![]));
                };
                let cell = &mut st2.memory[a];
                if (cell.readers | cell.writers) & !(1 << tid) != 0 {
                    st2.threads[ti].failed = true;
                    return Some((st2, vec![]));
                }
                cell.readers |= 1 << tid;
                cell.writers |= 1 << tid;
                Observation::None
            }
            Guard::ChkHeld(l) => {
                if !t.held.contains(l) {
                    st2.threads[ti].failed = true;
                    return Some((st2, vec![]));
                }
                Observation::None
            }
            Guard::OneRef(x) => {
                let a = t.env[x];
                let v = st.memory[a].value;
                if v > 0 {
                    let target = (v - 1) as usize;
                    // |{b : M(b).value = a}| = 1 — count references in
                    // memory to `target`.
                    let count = st
                        .memory
                        .iter()
                        .filter(|c| matches!(c.ty.shape, Shape::Ref(_)) && c.value == v)
                        .count();
                    if count != 1 {
                        st2.threads[ti].failed = true;
                        return Some((st2, vec![]));
                    }
                    let _ = target;
                }
                Observation::None
            }
        };
        let _ = obs;
        st2.threads[ti].guards_done += 1;
        return Some((st2, vec![]));
    }

    // All guards passed: perform the action.
    st2.threads[ti].guards_done = 0;
    st2.threads[ti].pc += 1;
    let mut obs = Vec::new();
    match &cs.stmt {
        FStmt::Skip => {}
        FStmt::Acquire(l) => {
            // The transition is only enabled when the lock is free
            // (handled by the caller-visible None below), so here the
            // lock is taken.
            st2.locks[*l as usize] = Some(tid);
            st2.threads[ti].held.push(*l);
        }
        FStmt::Release(l) => {
            if st2.locks[*l as usize] != Some(tid) {
                st2.threads[ti].failed = true;
                return Some((st2, vec![]));
            }
            st2.locks[*l as usize] = None;
            st2.threads[ti].held.retain(|h| h != l);
        }
        FStmt::Spawn(f) => {
            let genv = genv_of(p);
            spawn_thread(&mut st2, p, f, &genv);
        }
        FStmt::Assign(lhs, rhs) => {
            let Some(dst) = addr_of(st, t, lhs) else {
                st2.threads[ti].failed = true;
                return Some((st2, vec![]));
            };
            // Evaluate the rhs.
            let (val, cast_reset) = match rhs {
                RExpr::Const(n) => (*n, None),
                RExpr::Null => (0, None),
                RExpr::New(ty) => {
                    let a = st2.memory.len();
                    st2.memory.push(Cell {
                        value: 0,
                        ty: ty.clone(),
                        owner: if ty.mode == Mode::Private { tid } else { 0 },
                        readers: 0,
                        writers: 0,
                    });
                    ((a + 1) as i64, None)
                }
                RExpr::L(src) => {
                    let Some(a) = addr_of(st, t, src) else {
                        st2.threads[ti].failed = true;
                        return Some((st2, vec![]));
                    };
                    obs.push(Observation::Read { addr: a, tid });
                    (st.memory[a].value, None)
                }
                RExpr::Scast(ty, x) => {
                    let xa = t.env[x];
                    let v = st.memory[xa].value;
                    // Null out the source.
                    st2.memory[xa].value = 0;
                    if v > 0 {
                        let target = (v - 1) as usize;
                        // Retype the referent; new owner for private.
                        st2.memory[target].ty = ty.clone();
                        st2.memory[target].owner = if ty.mode == Mode::Private { tid } else { 0 };
                        st2.memory[target].readers = 0;
                        st2.memory[target].writers = 0;
                        (v, Some(target))
                    } else {
                        (0, None)
                    }
                }
            };
            st2.memory[dst].value = val;
            if let Some(reset) = cast_reset {
                obs.push(Observation::CastReset { addr: reset });
            }
            obs.push(Observation::Write { addr: dst, tid });
        }
    }
    Some((st2, obs))
}

// ----- exploration & soundness oracle -----

/// A violation of the §3.4 soundness theorem found by [`explore`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A private cell was accessed by a thread that does not own it.
    PrivateAccess {
        addr: usize,
        tid: usize,
        owner: usize,
    },
    /// Two threads raced on a dynamic cell with no intervening cast.
    DynamicRace { addr: usize },
    /// A locked-mode cell was accessed without holding its lock
    /// (the `locked` extension's discipline).
    LockDiscipline { addr: usize, tid: usize, lock: u8 },
    /// Exploration exceeded the state budget (not a soundness bug).
    Budget,
}

/// Exhaustively explores every interleaving of `p` (up to
/// `max_states` distinct states), checking the soundness invariants
/// with an oracle independent of the inserted guards.
///
/// Returns the violations found (empty for a sound configuration) and
/// the number of distinct states visited.
pub fn explore(p: &CheckedProgram, max_states: usize) -> (Vec<Violation>, usize) {
    // Oracle state per memory cell: accesses since the last cast.
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct OracleCell {
        readers: u64,
        writers: u64,
    }
    #[derive(Clone, PartialEq, Eq, Hash)]
    struct Node {
        st: State,
        oracle: Vec<OracleCell>,
    }

    let init = Node {
        st: initial_state(p),
        oracle: Vec::new(),
    };
    let mut seen: HashSet<u64> = HashSet::new();
    let mut stack = vec![init];
    let mut violations = Vec::new();
    let mut visited = 0usize;

    while let Some(node) = stack.pop() {
        let h = {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut hasher = DefaultHasher::new();
            node.st.hash(&mut hasher);
            for oc in &node.oracle {
                oc.readers.hash(&mut hasher);
                oc.writers.hash(&mut hasher);
            }
            hasher.finish()
        };
        if !seen.insert(h) {
            continue;
        }
        visited += 1;
        if visited > max_states {
            violations.push(Violation::Budget);
            break;
        }
        let n_threads = node.st.threads.len();
        for ti in 0..n_threads {
            if let Some((st2, obs)) = step(p, &node.st, ti) {
                let mut oracle = node.oracle.clone();
                oracle.resize(
                    st2.memory.len(),
                    OracleCell {
                        readers: 0,
                        writers: 0,
                    },
                );
                for o in obs {
                    match o {
                        Observation::CastReset { addr } => {
                            // A mode change forgives the past: reset
                            // the oracle for the cell.
                            oracle[addr] = OracleCell {
                                readers: 0,
                                writers: 0,
                            };
                        }
                        Observation::Write { addr, tid } => {
                            let cell = &st2.memory[addr];
                            if cell.ty.mode == Mode::Private && cell.owner != 0 && cell.owner != tid
                            {
                                violations.push(Violation::PrivateAccess {
                                    addr,
                                    tid,
                                    owner: cell.owner,
                                });
                            }
                            if let Mode::Locked(l) = cell.ty.mode {
                                // Oracle: the pre-state lock owner must
                                // be the accessor (independent of the
                                // ChkHeld guard).
                                if node.st.locks[l as usize] != Some(tid) {
                                    violations.push(Violation::LockDiscipline {
                                        addr,
                                        tid,
                                        lock: l,
                                    });
                                }
                            }
                            if cell.ty.mode == Mode::Dynamic {
                                let oc = &mut oracle[addr];
                                if (oc.readers | oc.writers) & !(1 << tid) != 0 {
                                    violations.push(Violation::DynamicRace { addr });
                                }
                                oc.readers |= 1 << tid;
                                oc.writers |= 1 << tid;
                            }
                        }
                        Observation::Read { addr, tid } => {
                            let cell = &st2.memory[addr];
                            if cell.ty.mode == Mode::Private && cell.owner != 0 && cell.owner != tid
                            {
                                violations.push(Violation::PrivateAccess {
                                    addr,
                                    tid,
                                    owner: cell.owner,
                                });
                            }
                            if let Mode::Locked(l) = cell.ty.mode {
                                if node.st.locks[l as usize] != Some(tid) {
                                    violations.push(Violation::LockDiscipline {
                                        addr,
                                        tid,
                                        lock: l,
                                    });
                                }
                            }
                            if cell.ty.mode == Mode::Dynamic {
                                let oc = &mut oracle[addr];
                                if oc.writers & !(1 << tid) != 0 {
                                    violations.push(Violation::DynamicRace { addr });
                                }
                                oc.readers |= 1 << tid;
                            }
                        }
                        Observation::None => {}
                    }
                }
                stack.push(Node { st: st2, oracle });
            }
        }
        if !violations.is_empty() {
            break;
        }
    }
    (violations, visited)
}

/// Strips all guards from a checked program — used to demonstrate
/// that the runtime checks are load-bearing for soundness.
pub fn strip_guards(p: &CheckedProgram) -> CheckedProgram {
    let mut q = p.clone();
    for (_, _, body) in &mut q.threads {
        for cs in body {
            cs.guards.clear();
        }
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dyn_int() -> FType {
        FType::int(Mode::Dynamic)
    }

    fn priv_ref(t: FType) -> FType {
        FType::reft(Mode::Private, t)
    }

    /// Two threads writing the same dynamic global.
    fn racy_program() -> FProgram {
        FProgram {
            globals: vec![("g".into(), dyn_int())],
            threads: vec![
                ThreadDef {
                    name: "main".into(),
                    locals: vec![],
                    body: vec![
                        FStmt::Spawn("writer".into()),
                        FStmt::Assign(LVal::Var("g".into()), RExpr::Const(1)),
                    ],
                },
                ThreadDef {
                    name: "writer".into(),
                    locals: vec![],
                    body: vec![FStmt::Assign(LVal::Var("g".into()), RExpr::Const(2))],
                },
            ],
            n_locks: 0,
        }
    }

    #[test]
    fn typecheck_inserts_guards() {
        let cp = typecheck(&racy_program()).unwrap();
        let main = &cp.threads[0].2;
        assert!(main[1]
            .guards
            .contains(&Guard::ChkWrite(LVal::Var("g".into()))));
    }

    #[test]
    fn globals_must_be_dynamic() {
        let p = FProgram {
            globals: vec![("g".into(), FType::int(Mode::Private))],
            threads: vec![ThreadDef {
                name: "main".into(),
                locals: vec![],
                body: vec![],
            }],
            n_locks: 0,
        };
        assert!(typecheck(&p).is_err());
    }

    #[test]
    fn ref_ctor_rejected() {
        let p = FProgram {
            globals: vec![(
                "g".into(),
                FType::reft(Mode::Dynamic, FType::int(Mode::Private)),
            )],
            threads: vec![ThreadDef {
                name: "main".into(),
                locals: vec![],
                body: vec![],
            }],
            n_locks: 0,
        };
        assert!(typecheck(&p).is_err());
    }

    #[test]
    fn checked_racy_program_is_sound() {
        // With guards inserted, the soundness oracle finds no races:
        // the losing thread fails its check before racing.
        let cp = typecheck(&racy_program()).unwrap();
        let (violations, states) = explore(&cp, 100_000);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(states > 1);
    }

    #[test]
    fn unchecked_racy_program_violates() {
        // Stripping the guards exposes the race to the oracle,
        // demonstrating the checks are what guarantee the theorem.
        let cp = strip_guards(&typecheck(&racy_program()).unwrap());
        let (violations, _) = explore(&cp, 100_000);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::DynamicRace { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn scast_transfers_ownership_soundly() {
        // main allocates a dynamic int, writes it, then casts the
        // reference to private — afterwards only main may touch it.
        let p = FProgram {
            globals: vec![("g".into(), FType::reft(Mode::Dynamic, dyn_int()))],
            threads: vec![ThreadDef {
                name: "main".into(),
                locals: vec![
                    ("x".into(), priv_ref(dyn_int())),
                    ("y".into(), priv_ref(FType::int(Mode::Private))),
                ],
                body: vec![
                    FStmt::Assign(LVal::Var("x".into()), RExpr::New(dyn_int())),
                    FStmt::Assign(LVal::Deref("x".into()), RExpr::Const(7)),
                    FStmt::Assign(
                        LVal::Var("y".into()),
                        RExpr::Scast(FType::int(Mode::Private), "x".into()),
                    ),
                    FStmt::Assign(LVal::Deref("y".into()), RExpr::Const(9)),
                ],
            }],
            n_locks: 0,
        };
        let cp = typecheck(&p).unwrap();
        let (violations, _) = explore(&cp, 100_000);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn scast_nulls_source() {
        let p = FProgram {
            globals: vec![],
            threads: vec![ThreadDef {
                name: "main".into(),
                locals: vec![
                    ("x".into(), priv_ref(dyn_int())),
                    ("y".into(), priv_ref(FType::int(Mode::Private))),
                ],
                body: vec![
                    FStmt::Assign(LVal::Var("x".into()), RExpr::New(dyn_int())),
                    FStmt::Assign(
                        LVal::Var("y".into()),
                        RExpr::Scast(FType::int(Mode::Private), "x".into()),
                    ),
                ],
            }],
            n_locks: 0,
        };
        let cp = typecheck(&p).unwrap();
        let mut st = initial_state(&cp);
        // Run main to completion deterministically.
        while let Some((st2, _)) = step(&cp, &st, 0) {
            st = st2;
        }
        let x_addr = st.threads[0].env["x"];
        assert_eq!(st.memory[x_addr].value, 0, "scast nulls its source");
    }

    #[test]
    fn oneref_fails_with_second_reference() {
        // Two references to the same object: the cast must fail.
        let p = FProgram {
            globals: vec![],
            threads: vec![ThreadDef {
                name: "main".into(),
                locals: vec![
                    ("x".into(), priv_ref(dyn_int())),
                    ("z".into(), priv_ref(dyn_int())),
                    ("y".into(), priv_ref(FType::int(Mode::Private))),
                ],
                body: vec![
                    FStmt::Assign(LVal::Var("x".into()), RExpr::New(dyn_int())),
                    FStmt::Assign(LVal::Var("z".into()), RExpr::L(LVal::Var("x".into()))),
                    FStmt::Assign(
                        LVal::Var("y".into()),
                        RExpr::Scast(FType::int(Mode::Private), "x".into()),
                    ),
                ],
            }],
            n_locks: 0,
        };
        let cp = typecheck(&p).unwrap();
        let mut st = initial_state(&cp);
        while let Some((st2, _)) = step(&cp, &st, 0) {
            st = st2;
        }
        assert!(st.threads[0].failed, "oneref must fail with 2 refs");
    }

    #[test]
    fn illegal_deep_cast_rejected() {
        // ref(dynamic ref(dynamic int)) cannot cast to
        // ref(private ref(private int)).
        let inner_dyn = FType::reft(Mode::Dynamic, dyn_int());
        let inner_priv = FType::reft(Mode::Private, FType::int(Mode::Private));
        let p = FProgram {
            globals: vec![],
            threads: vec![ThreadDef {
                name: "main".into(),
                locals: vec![
                    ("x".into(), priv_ref(inner_dyn.clone())),
                    ("y".into(), priv_ref(inner_priv.clone())),
                ],
                body: vec![FStmt::Assign(
                    LVal::Var("y".into()),
                    RExpr::Scast(inner_priv, "x".into()),
                )],
            }],
            n_locks: 0,
        };
        assert!(typecheck(&p).is_err());
    }

    #[test]
    fn private_locals_only_touched_by_owner() {
        // Reads and writes of private locals never violate ownership
        // in any interleaving.
        let p = FProgram {
            globals: vec![("g".into(), dyn_int())],
            threads: vec![
                ThreadDef {
                    name: "main".into(),
                    locals: vec![("a".into(), FType::int(Mode::Private))],
                    body: vec![
                        FStmt::Spawn("other".into()),
                        FStmt::Assign(LVal::Var("a".into()), RExpr::Const(3)),
                        FStmt::Assign(LVal::Var("a".into()), RExpr::Const(4)),
                    ],
                },
                ThreadDef {
                    name: "other".into(),
                    locals: vec![("b".into(), FType::int(Mode::Private))],
                    body: vec![FStmt::Assign(LVal::Var("b".into()), RExpr::Const(5))],
                },
            ],
            n_locks: 0,
        };
        let cp = typecheck(&p).unwrap();
        let (violations, _) = explore(&cp, 100_000);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn read_sharing_allowed() {
        // Multiple readers of a dynamic global: no failures needed,
        // no violations.
        let p = FProgram {
            globals: vec![("g".into(), dyn_int())],
            threads: vec![
                ThreadDef {
                    name: "main".into(),
                    locals: vec![("a".into(), FType::int(Mode::Dynamic))],
                    body: vec![
                        FStmt::Spawn("reader".into()),
                        FStmt::Assign(LVal::Var("a".into()), RExpr::L(LVal::Var("g".into()))),
                    ],
                },
                ThreadDef {
                    name: "reader".into(),
                    locals: vec![("b".into(), FType::int(Mode::Dynamic))],
                    body: vec![FStmt::Assign(
                        LVal::Var("b".into()),
                        RExpr::L(LVal::Var("g".into())),
                    )],
                },
            ],
            n_locks: 0,
        };
        let cp = typecheck(&p).unwrap();
        let (violations, _) = explore(&cp, 100_000);
        assert!(violations.is_empty(), "{violations:?}");
        // And no thread needs to fail: verify a full run exists where
        // everyone completes (readers don't conflict).
        let mut st = initial_state(&cp);
        loop {
            let mut progressed = false;
            for ti in 0..st.threads.len() {
                if let Some((st2, _)) = step(&cp, &st, ti) {
                    st = st2;
                    progressed = true;
                    break;
                }
            }
            if !progressed {
                break;
            }
        }
        assert!(st.threads.iter().all(|t| !t.failed));
    }

    // ----- the locked extension -----

    fn locked_counter_program(with_discipline: bool) -> FProgram {
        let body = |_: usize| {
            let mut b = Vec::new();
            if with_discipline {
                b.push(FStmt::Acquire(0));
            }
            b.push(FStmt::Assign(LVal::Var("c".into()), RExpr::Const(1)));
            if with_discipline {
                b.push(FStmt::Release(0));
            }
            b
        };
        FProgram {
            globals: vec![(
                "c".into(),
                FType {
                    mode: Mode::Locked(0),
                    shape: Shape::Int,
                },
            )],
            threads: vec![
                ThreadDef {
                    name: "main".into(),
                    locals: vec![],
                    body: {
                        let mut b = vec![FStmt::Spawn("other".into())];
                        b.extend(body(0));
                        b
                    },
                },
                ThreadDef {
                    name: "other".into(),
                    locals: vec![],
                    body: body(1),
                },
            ],
            n_locks: 1,
        }
    }

    #[test]
    fn locked_guard_is_inserted() {
        let cp = typecheck(&locked_counter_program(true)).unwrap();
        let other = &cp.threads[1].2;
        assert!(other[1].guards.contains(&Guard::ChkHeld(0)));
    }

    #[test]
    fn locked_counter_with_discipline_is_sound() {
        let cp = typecheck(&locked_counter_program(true)).unwrap();
        let (violations, states) = explore(&cp, 200_000);
        assert!(violations.is_empty(), "{violations:?}");
        assert!(states > 5);
    }

    #[test]
    fn unlocked_access_fails_the_guard_not_the_theorem() {
        // Without acquire/release the ChkHeld guard stops the access:
        // still no oracle violation.
        let cp = typecheck(&locked_counter_program(false)).unwrap();
        let (violations, _) = explore(&cp, 200_000);
        assert!(violations.is_empty(), "{violations:?}");
        // And every run fails both threads at the guard.
        let mut st = initial_state(&cp);
        loop {
            let mut stepped = false;
            for ti in 0..st.threads.len() {
                if let Some((s2, _)) = step(&cp, &st, ti) {
                    st = s2;
                    stepped = true;
                    break;
                }
            }
            if !stepped {
                break;
            }
        }
        assert!(st.threads.iter().all(|t| t.failed));
    }

    #[test]
    fn stripping_chkheld_exposes_lock_discipline_violation() {
        let cp = strip_guards(&typecheck(&locked_counter_program(false)).unwrap());
        let (violations, _) = explore(&cp, 200_000);
        assert!(
            violations
                .iter()
                .any(|v| matches!(v, Violation::LockDiscipline { .. })),
            "{violations:?}"
        );
    }

    #[test]
    fn release_without_hold_fails() {
        let p = FProgram {
            globals: vec![],
            threads: vec![ThreadDef {
                name: "main".into(),
                locals: vec![],
                body: vec![FStmt::Release(0)],
            }],
            n_locks: 1,
        };
        let cp = typecheck(&p).unwrap();
        let mut st = initial_state(&cp);
        while let Some((s2, _)) = step(&cp, &st, 0) {
            st = s2;
        }
        assert!(st.threads[0].failed);
    }

    #[test]
    fn acquire_blocks_until_free() {
        // main takes the lock and never releases; other's acquire is
        // never enabled -> deadlock (no successors for other).
        let p = FProgram {
            globals: vec![],
            threads: vec![
                ThreadDef {
                    name: "main".into(),
                    locals: vec![],
                    body: vec![FStmt::Spawn("other".into()), FStmt::Acquire(0)],
                },
                ThreadDef {
                    name: "other".into(),
                    locals: vec![],
                    body: vec![FStmt::Acquire(0)],
                },
            ],
            n_locks: 1,
        };
        let cp = typecheck(&p).unwrap();
        let mut st = initial_state(&cp);
        loop {
            let mut stepped = false;
            for ti in 0..st.threads.len() {
                if let Some((s2, _)) = step(&cp, &st, ti) {
                    st = s2;
                    stepped = true;
                    break;
                }
            }
            if !stepped {
                break;
            }
        }
        // main finished; other is blocked mid-program, not failed.
        assert!(st.threads[0].done());
        assert!(!st.threads[1].failed);
        assert!(!st.threads[1].done());
    }

    #[test]
    fn locked_ref_to_private_is_ill_formed() {
        let p = FProgram {
            globals: vec![(
                "g".into(),
                FType::reft(Mode::Locked(0), FType::int(Mode::Private)),
            )],
            threads: vec![ThreadDef {
                name: "main".into(),
                locals: vec![],
                body: vec![],
            }],
            n_locks: 1,
        };
        assert!(typecheck(&p).is_err());
    }

    #[test]
    fn unknown_lock_rejected() {
        let p = locked_counter_program(true);
        let mut p = p;
        p.n_locks = 0;
        assert!(typecheck(&p).is_err());
    }
}
