//! Compiles a checked, instrumented MiniC program to VM bytecode.
//!
//! The compiler consults the [`sharc_core::Instrumentation`] table:
//! wherever the checker attached a runtime check to an l-value
//! occurrence, the corresponding `ChkRead`/`ChkWrite`/`ChkLockHeld`/
//! `OneRef` instruction is emitted immediately before the access —
//! the `when .1(t1),...` guards of the paper's formal model.

use crate::bytecode::*;
use minic::ast::{self, BinOp, Block, Expr, ExprKind, Stmt, StmtKind, Type, TypeKind, UnOp};
use minic::diag::Diagnostic;
use minic::env::StructTable;
use minic::span::Span;
use sharc_core::check::CheckKind;
use sharc_core::typer::{type_function, TypeEnv};
use sharc_core::CheckedProgram;
use std::collections::HashMap;

/// Compiles `checked` into a runnable [`Module`].
///
/// Check slots the elision pass proved redundant produce **no
/// instruction**; the savings are recorded in [`Module::elision`].
/// Use [`compile_full_checks`] for the every-check build.
///
/// # Errors
///
/// Returns a diagnostic for constructs the VM cannot execute
/// (struct-by-value parameters, non-constant global initializers,
/// missing `main`).
pub fn compile(checked: &CheckedProgram) -> Result<Module, Diagnostic> {
    compile_with(checked, true)
}

/// Compiles `checked` with the elision facts ignored: every check the
/// checker attached becomes an instruction. This is the reference
/// build the elision differential compares against.
///
/// # Errors
///
/// Same failure modes as [`compile`].
pub fn compile_full_checks(checked: &CheckedProgram) -> Result<Module, Diagnostic> {
    compile_with(checked, false)
}

fn compile_with(checked: &CheckedProgram, use_elision: bool) -> Result<Module, Diagnostic> {
    let program = &checked.program;
    let structs = &checked.structs;

    // Globals.
    let mut globals: HashMap<String, (u32, Type)> = HashMap::new();
    let mut global_sizes = Vec::new();
    let mut global_inits = Vec::new();
    for (i, g) in program.globals.iter().enumerate() {
        let size = structs.size_of(&g.ty) as u32;
        globals.insert(g.name.clone(), (i as u32, g.ty.clone()));
        global_sizes.push(size);
        let mut init = vec![Value::ZERO; size as usize];
        if let Some(e) = &g.init {
            init[0] = const_value(e).ok_or_else(|| {
                Diagnostic::error(
                    "global initializers must be integer/char/bool constants or NULL",
                    g.span,
                )
            })?;
        }
        global_inits.push(init);
    }

    let fn_indices: HashMap<String, u32> = program
        .fns
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i as u32))
        .collect();

    let env = TypeEnv::new(program, structs);
    let mut strings: Vec<Vec<u8>> = Vec::new();
    let mut sites: Vec<CheckSite> = Vec::new();
    let mut site_map: HashMap<ast::NodeId, u32> = HashMap::new();
    let mut elision = ElisionCounts::default();

    let mut fns = Vec::new();
    for f in &program.fns {
        for p in &f.params {
            if structs.size_of(&p.ty) != 1 {
                return Err(Diagnostic::error(
                    "struct-by-value parameters are not supported; pass a pointer",
                    p.span,
                ));
            }
        }
        let table = type_function(&env, f);
        let mut c = FnCompiler {
            checked,
            structs,
            globals: &globals,
            fn_indices: &fn_indices,
            table: table.exprs,
            code: Vec::new(),
            scopes: vec![HashMap::new()],
            slot_types: Vec::new(),
            slot_sizes: Vec::new(),
            loop_stack: Vec::new(),
            strings: &mut strings,
            sites: &mut sites,
            site_map: &mut site_map,
            checks_enabled: true,
            elision: use_elision.then_some(&checked.elision),
            counts: &mut elision,
        };
        for p in &f.params {
            c.declare_slot(&p.name, p.ty.clone(), 1);
        }
        c.block(&f.body)?;
        c.code.push(Insn::Ret(false));
        fns.push(FnCode {
            name: f.name.clone(),
            n_slots: c.slot_sizes.len() as u16,
            n_params: f.params.len() as u8,
            slot_sizes: c.slot_sizes,
            code: c.code,
        });
    }

    let entry = *fn_indices
        .get("main")
        .ok_or_else(|| Diagnostic::error("program has no `main` function", Span::DUMMY))?;

    Ok(Module {
        fns,
        entry,
        global_sizes,
        global_inits,
        strings,
        sites,
        file: checked.source_map.name().to_owned(),
        elision,
    })
}

fn const_value(e: &Expr) -> Option<Value> {
    match &e.kind {
        ExprKind::IntLit(v) => Some(Value::Int(*v)),
        ExprKind::CharLit(c) => Some(Value::Int(*c as i64)),
        ExprKind::BoolLit(b) => Some(Value::Int(*b as i64)),
        ExprKind::Null => Some(Value::Ptr(Addr::NULL)),
        ExprKind::Unary(UnOp::Neg, inner) => match const_value(inner)? {
            Value::Int(v) => Some(Value::Int(-v)),
            _ => None,
        },
        _ => None,
    }
}

type CResult<T> = Result<T, Diagnostic>;

struct FnCompiler<'a> {
    checked: &'a CheckedProgram,
    structs: &'a StructTable,
    globals: &'a HashMap<String, (u32, Type)>,
    fn_indices: &'a HashMap<String, u32>,
    table: HashMap<ast::NodeId, Type>,
    code: Vec<Insn>,
    scopes: Vec<HashMap<String, u16>>,
    slot_types: Vec<Type>,
    slot_sizes: Vec<u32>,
    /// (break-patch sites, continue target) per enclosing loop.
    loop_stack: Vec<(Vec<usize>, u32)>,
    strings: &'a mut Vec<Vec<u8>>,
    sites: &'a mut Vec<CheckSite>,
    site_map: &'a mut HashMap<ast::NodeId, u32>,
    /// Disabled while compiling synthesized lock expressions.
    checks_enabled: bool,
    /// Elision facts to consult, or `None` for the full-checks build.
    elision: Option<&'a sharc_core::ElisionFacts>,
    /// Module-wide emitted/elided/collapsed accounting.
    counts: &'a mut ElisionCounts,
}

impl<'a> FnCompiler<'a> {
    fn declare_slot(&mut self, name: &str, ty: Type, size: u32) -> u16 {
        let slot = self.slot_types.len() as u16;
        self.slot_types.push(ty);
        self.slot_sizes.push(size);
        self.scopes
            .last_mut()
            .expect("scope stack never empty")
            .insert(name.to_owned(), slot);
        slot
    }

    fn lookup_local(&self, name: &str) -> Option<u16> {
        for scope in self.scopes.iter().rev() {
            if let Some(&s) = scope.get(name) {
                return Some(s);
            }
        }
        None
    }

    fn err(&self, msg: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic::error(msg, span)
    }

    fn ty_of(&self, e: &Expr) -> CResult<Type> {
        // Expressions inside synthesized lock paths are not in the
        // table; derive their shapes locally.
        if let Some(t) = self.table.get(&e.id) {
            return Ok(t.clone());
        }
        self.shape_of(e)
    }

    /// Minimal shape typing for synthesized expressions (lock paths).
    fn shape_of(&self, e: &Expr) -> CResult<Type> {
        match &e.kind {
            ExprKind::Ident(name) => {
                if let Some(slot) = self.lookup_local(name) {
                    Ok(self.slot_types[slot as usize].clone())
                } else if let Some((_, ty)) = self.globals.get(name) {
                    Ok(ty.clone())
                } else {
                    Err(self.err(format!("unknown name `{name}` in lock path"), e.span))
                }
            }
            ExprKind::Field(base, fname, arrow) => {
                let bt = self.shape_of(base)?;
                let st = if *arrow {
                    bt.pointee()
                        .cloned()
                        .ok_or_else(|| self.err("`->` on non-pointer in lock path", e.span))?
                } else {
                    bt
                };
                let TypeKind::Named(sname) = &st.kind else {
                    return Err(self.err("field access on non-struct in lock path", e.span));
                };
                let sid = self
                    .structs
                    .lookup(sname)
                    .ok_or_else(|| self.err(format!("unknown struct `{sname}`"), e.span))?;
                let def = self.structs.def(sid);
                let field = def
                    .field(fname)
                    .ok_or_else(|| self.err(format!("no field `{fname}`"), e.span))?;
                Ok(field.ty.clone())
            }
            ExprKind::Unary(UnOp::Deref, p) => {
                let pt = self.shape_of(p)?;
                pt.pointee()
                    .cloned()
                    .ok_or_else(|| self.err("deref of non-pointer in lock path", e.span))
            }
            ExprKind::Index(base, _) => {
                let bt = self.shape_of(base)?;
                bt.pointee()
                    .or(bt.elem())
                    .cloned()
                    .ok_or_else(|| self.err("index of non-array in lock path", e.span))
            }
            _ => Err(self.err("unsupported expression in lock path", e.span)),
        }
    }

    fn size_of(&self, ty: &Type) -> u32 {
        self.structs.size_of(ty) as u32
    }

    fn site_for(&mut self, id: ast::NodeId) -> u32 {
        if let Some(&s) = self.site_map.get(&id) {
            return s;
        }
        let ac = &self.checked.instr.checks[&id];
        let s = self.sites.len() as u32;
        self.sites.push(CheckSite {
            lvalue: ac.lvalue.clone(),
            span: ac.span,
        });
        self.site_map.insert(id, s);
        s
    }

    /// Emits the read/write check attached to l-value node `id`, with
    /// the access address already on top of the stack.
    fn emit_check(&mut self, id: ast::NodeId, size: u32, is_write: bool) -> CResult<()> {
        if !self.checks_enabled {
            return Ok(());
        }
        let Some(ac) = self.checked.instr.checks.get(&id) else {
            return Ok(());
        };
        let kind = if is_write {
            ac.write.clone()
        } else {
            ac.read.clone()
        };
        let Some(kind) = kind else { return Ok(()) };
        if let Some(facts) = self.elision {
            let reason = if is_write {
                facts.write_reason(id)
            } else {
                facts.read_reason(id)
            };
            if let Some(r) = reason {
                // The proven-redundant slot vanishes: no site, no
                // instruction, no lock-expression evaluation.
                if matches!(r, sharc_core::Reason::ReadOfWrite) {
                    self.counts.collapsed += 1;
                } else {
                    self.counts.elided += 1;
                }
                return Ok(());
            }
        }
        self.counts.emitted += 1;
        let site = self.site_for(id);
        match kind {
            CheckKind::Dynamic => {
                self.code.push(if is_write {
                    Insn::ChkWrite { site, size }
                } else {
                    Insn::ChkRead { site, size }
                });
            }
            CheckKind::Locked(lock_idx) => {
                let lock = self.checked.instr.lock_exprs[lock_idx].clone();
                let was = self.checks_enabled;
                self.checks_enabled = false;
                // A by-value mutex is identified by its address; a
                // `mutex *` lock expression is loaded.
                let lock_ty = self.ty_of(&lock)?;
                if matches!(lock_ty.kind, TypeKind::Mutex) {
                    self.addr(&lock)?;
                } else {
                    self.rvalue(&lock)?;
                }
                self.checks_enabled = was;
                self.code.push(Insn::ChkLockHeld { site });
            }
        }
        Ok(())
    }

    // ----- statements -----

    fn block(&mut self, b: &Block) -> CResult<()> {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.stmt(s)?;
        }
        self.scopes.pop();
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt) -> CResult<()> {
        match &s.kind {
            StmtKind::Decl { name, ty, init } => {
                let size = self.size_of(ty);
                let slot = self.declare_slot(name, ty.clone(), size);
                if let Some(e) = init {
                    if size == 1 {
                        self.code.push(Insn::LocalAddr(slot));
                        self.rvalue(e)?;
                        self.code.push(Insn::Store);
                    } else {
                        self.code.push(Insn::LocalAddr(slot));
                        self.addr(e)?;
                        self.code.push(Insn::CopyN(size));
                    }
                }
                Ok(())
            }
            StmtKind::Assign { lhs, rhs } => {
                let lt = self.ty_of(lhs)?;
                let size = self.size_of(&lt);
                if size == 1 {
                    self.addr(lhs)?;
                    self.emit_check(lhs.id, 1, true)?;
                    self.rvalue(rhs)?;
                    self.code.push(Insn::Store);
                } else {
                    self.addr(lhs)?;
                    self.emit_check(lhs.id, size, true)?;
                    self.addr(rhs)?;
                    self.emit_check(rhs.id, size, false)?;
                    self.code.push(Insn::CopyN(size));
                }
                Ok(())
            }
            StmtKind::Expr(e) => {
                if self.expr_pushes(e) {
                    self.rvalue(e)?;
                    self.code.push(Insn::Pop);
                } else {
                    self.rvalue(e)?;
                }
                Ok(())
            }
            StmtKind::If {
                cond,
                then_blk,
                else_blk,
            } => {
                self.rvalue(cond)?;
                let jz = self.emit_patch(Insn::JumpIfZero(0));
                self.block(then_blk)?;
                if let Some(eb) = else_blk {
                    let jend = self.emit_patch(Insn::Jump(0));
                    self.patch(jz);
                    self.block(eb)?;
                    self.patch(jend);
                } else {
                    self.patch(jz);
                }
                Ok(())
            }
            StmtKind::While { cond, body } => {
                let top = self.code.len() as u32;
                self.rvalue(cond)?;
                let jz = self.emit_patch(Insn::JumpIfZero(0));
                self.loop_stack.push((Vec::new(), top));
                self.block(body)?;
                self.code.push(Insn::Jump(top));
                self.patch(jz);
                let (breaks, _) = self.loop_stack.pop().expect("loop stack");
                for b in breaks {
                    self.patch(b);
                }
                Ok(())
            }
            StmtKind::For {
                init,
                cond,
                step,
                body,
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.stmt(i)?;
                }
                let top = self.code.len() as u32;
                let jz = if let Some(c) = cond {
                    self.rvalue(c)?;
                    Some(self.emit_patch(Insn::JumpIfZero(0)))
                } else {
                    None
                };
                // Continue jumps to the step, which we place after the
                // body; record a placeholder target now.
                self.loop_stack.push((Vec::new(), u32::MAX));
                self.block(body)?;
                let step_pos = self.code.len() as u32;
                if let Some(st) = step {
                    self.stmt(st)?;
                }
                self.code.push(Insn::Jump(top));
                if let Some(jz) = jz {
                    self.patch(jz);
                }
                let (breaks, _) = self.loop_stack.pop().expect("loop stack");
                for b in breaks {
                    self.patch(b);
                }
                // Retarget continues (emitted as Jump(u32::MAX)).
                let end = self.code.len();
                for insn in &mut self.code[top as usize..end] {
                    if let Insn::Jump(t) = insn {
                        if *t == u32::MAX {
                            *t = step_pos;
                        }
                    }
                }
                self.scopes.pop();
                Ok(())
            }
            StmtKind::Return(v) => {
                if let Some(e) = v {
                    self.rvalue(e)?;
                    self.code.push(Insn::Ret(true));
                } else {
                    self.code.push(Insn::Ret(false));
                }
                Ok(())
            }
            StmtKind::Break => {
                let j = self.emit_patch(Insn::Jump(0));
                match self.loop_stack.last_mut() {
                    Some((breaks, _)) => breaks.push(j),
                    None => return Err(self.err("break outside loop", s.span)),
                }
                Ok(())
            }
            StmtKind::Continue => {
                let target = match self.loop_stack.last() {
                    Some((_, t)) => *t,
                    None => return Err(self.err("continue outside loop", s.span)),
                };
                self.code.push(Insn::Jump(target));
                Ok(())
            }
            StmtKind::Block(b) => self.block(b),
        }
    }

    fn emit_patch(&mut self, insn: Insn) -> usize {
        self.code.push(insn);
        self.code.len() - 1
    }

    fn patch(&mut self, at: usize) {
        let target = self.code.len() as u32;
        match &mut self.code[at] {
            Insn::Jump(t) | Insn::JumpIfZero(t) | Insn::JumpIfNonZero(t) => *t = target,
            other => unreachable!("patching non-jump {other:?}"),
        }
    }

    /// True if evaluating `e` leaves a value on the stack (calls to
    /// void builtins do not).
    fn expr_pushes(&self, e: &Expr) -> bool {
        if let ExprKind::Call(callee, _) = &e.kind {
            if let ExprKind::Ident(name) = &callee.kind {
                if matches!(
                    name.as_str(),
                    "join"
                        | "join_all"
                        | "mutex_lock"
                        | "mutex_unlock"
                        | "cond_wait"
                        | "cond_signal"
                        | "cond_broadcast"
                        | "free"
                        | "print"
                        | "print_str"
                        | "assert"
                        | "yield_now"
                ) {
                    return false;
                }
            }
        }
        true
    }

    // ----- expressions -----

    /// Compiles `e`, leaving its value on the stack.
    fn rvalue(&mut self, e: &Expr) -> CResult<()> {
        match &e.kind {
            ExprKind::IntLit(v) => {
                self.code.push(Insn::PushInt(*v));
                Ok(())
            }
            ExprKind::CharLit(c) => {
                self.code.push(Insn::PushInt(*c as i64));
                Ok(())
            }
            ExprKind::BoolLit(b) => {
                self.code.push(Insn::PushInt(*b as i64));
                Ok(())
            }
            ExprKind::Null => {
                self.code.push(Insn::PushNull);
                Ok(())
            }
            ExprKind::StrLit(s) => {
                let mut bytes = s.as_bytes().to_vec();
                bytes.push(0);
                let idx = self.strings.len() as u32;
                self.strings.push(bytes);
                self.code.push(Insn::StrAddr(idx));
                Ok(())
            }
            ExprKind::Ident(name) => {
                if self.lookup_local(name).is_none() && !self.globals.contains_key(name) {
                    if let Some(&fi) = self.fn_indices.get(name) {
                        self.code.push(Insn::PushFn(fi));
                        return Ok(());
                    }
                }
                self.addr(e)?;
                self.emit_check(e.id, 1, false)?;
                self.code.push(Insn::Load);
                Ok(())
            }
            ExprKind::Unary(UnOp::Deref, _) | ExprKind::Index(..) | ExprKind::Field(..) => {
                let ty = self.ty_of(e)?;
                let size = self.size_of(&ty);
                self.addr(e)?;
                if size == 1 {
                    self.emit_check(e.id, 1, false)?;
                    self.code.push(Insn::Load);
                } else {
                    // A struct-typed r-value is represented by its
                    // address (consumed by CopyN in assignments).
                    self.emit_check(e.id, size, false)?;
                }
                Ok(())
            }
            ExprKind::Unary(UnOp::AddrOf, lv) => self.addr(lv),
            ExprKind::Unary(UnOp::Neg, a) => {
                self.rvalue(a)?;
                self.code.push(Insn::Neg);
                Ok(())
            }
            ExprKind::Unary(UnOp::Not, a) => {
                self.rvalue(a)?;
                self.code.push(Insn::Not);
                Ok(())
            }
            ExprKind::Unary(UnOp::BitNot, a) => {
                self.rvalue(a)?;
                self.code.push(Insn::BitNot);
                Ok(())
            }
            ExprKind::Binary(op, a, b) => self.binary(e, *op, a, b),
            ExprKind::Call(callee, args) => self.call(e, callee, args),
            ExprKind::Cast(_, inner) => self.rvalue(inner),
            ExprKind::Scast(_, src) => self.scast(e, src),
            ExprKind::New(ty) => {
                let size = self.size_of(ty);
                self.code.push(Insn::New(size));
                Ok(())
            }
            ExprKind::NewArray(ty, n) => {
                let esize = self.size_of(ty);
                self.rvalue(n)?;
                self.code.push(Insn::NewArray(esize));
                Ok(())
            }
            ExprKind::Sizeof(ty) => {
                let size = self.size_of(ty);
                self.code.push(Insn::PushInt(size as i64));
                Ok(())
            }
            ExprKind::Ternary(c, a, b) => {
                self.rvalue(c)?;
                let jz = self.emit_patch(Insn::JumpIfZero(0));
                self.rvalue(a)?;
                let jend = self.emit_patch(Insn::Jump(0));
                self.patch(jz);
                self.rvalue(b)?;
                self.patch(jend);
                Ok(())
            }
        }
    }

    fn binary(&mut self, e: &Expr, op: BinOp, a: &Expr, b: &Expr) -> CResult<()> {
        // Short-circuit logic.
        if op == BinOp::And {
            // a && b  =>  if !a then 0 else (b != 0)
            self.rvalue(a)?;
            let jz = self.emit_patch(Insn::JumpIfZero(0));
            self.rvalue(b)?;
            self.code.push(Insn::PushInt(0));
            self.code.push(Insn::Binop(BinOp::Ne));
            let jend = self.emit_patch(Insn::Jump(0));
            self.patch(jz);
            self.code.push(Insn::PushInt(0));
            self.patch(jend);
            let _ = e;
            return Ok(());
        }
        if op == BinOp::Or {
            self.rvalue(a)?;
            let jnz = self.emit_patch(Insn::JumpIfNonZero(0));
            self.rvalue(b)?;
            self.code.push(Insn::PushInt(0));
            self.code.push(Insn::Binop(BinOp::Ne));
            let jend = self.emit_patch(Insn::Jump(0));
            self.patch(jnz);
            self.code.push(Insn::PushInt(1));
            self.patch(jend);
            return Ok(());
        }
        // Pointer arithmetic.
        let ta = self.ty_of(a)?;
        let tb = self.ty_of(b)?;
        let a_ptrish = ta.is_ptr() || matches!(ta.kind, TypeKind::Array(..));
        let b_ptrish = tb.is_ptr() || matches!(tb.kind, TypeKind::Array(..));
        if a_ptrish && !b_ptrish && matches!(op, BinOp::Add | BinOp::Sub) {
            let elem = ta
                .pointee()
                .or(ta.elem())
                .cloned()
                .expect("pointer-ish type has element");
            let scale = self.size_of(&elem);
            self.ptr_operand(a, &ta)?;
            self.rvalue(b)?;
            if op == BinOp::Sub {
                self.code.push(Insn::Neg);
            }
            self.code.push(Insn::IndexAddr(scale));
            return Ok(());
        }
        if b_ptrish && !a_ptrish && op == BinOp::Add {
            let elem = tb
                .pointee()
                .or(tb.elem())
                .cloned()
                .expect("pointer-ish type has element");
            let scale = self.size_of(&elem);
            self.ptr_operand(b, &tb)?;
            self.rvalue(a)?;
            self.code.push(Insn::IndexAddr(scale));
            return Ok(());
        }
        self.rvalue(a)?;
        self.rvalue(b)?;
        self.code.push(Insn::Binop(op));
        Ok(())
    }

    /// Pushes the pointer value of a pointer-or-array operand (arrays
    /// decay to the address of their first element).
    fn ptr_operand(&mut self, e: &Expr, ty: &Type) -> CResult<()> {
        if matches!(ty.kind, TypeKind::Array(..)) && e.is_lvalue() {
            self.addr(e)
        } else {
            self.rvalue(e)
        }
    }

    fn scast(&mut self, e: &Expr, src: &Expr) -> CResult<()> {
        // addr; dup; [chkread]; load; swap; [chkwrite]; null; store;
        // oneref  — nulls the source and checks single ownership.
        self.addr(src)?;
        self.code.push(Insn::Dup);
        self.emit_check(src.id, 1, false)?;
        self.code.push(Insn::Load);
        self.code.push(Insn::Swap);
        self.emit_check(src.id, 1, true)?;
        self.code.push(Insn::PushNull);
        self.code.push(Insn::Store);
        let site = if self.checked.instr.checks.contains_key(&src.id) {
            self.site_for(src.id)
        } else {
            // Synthesize a site for the report even when the source
            // itself needed no access check.
            let s = self.sites.len() as u32;
            self.sites.push(CheckSite {
                lvalue: minic::pretty::expr(src),
                span: e.span,
            });
            s
        };
        self.code.push(Insn::OneRef { site });
        Ok(())
    }

    fn call(&mut self, e: &Expr, callee: &Expr, args: &[Expr]) -> CResult<()> {
        if let ExprKind::Ident(name) = &callee.kind {
            if ast::is_builtin(name) {
                return self.builtin(e, name, args);
            }
            if self.lookup_local(name).is_none() && !self.globals.contains_key(name) {
                if let Some(&fi) = self.fn_indices.get(name) {
                    for a in args {
                        self.rvalue(a)?;
                    }
                    self.code.push(Insn::Call(fi, args.len() as u8));
                    return Ok(());
                }
            }
        }
        // Indirect call.
        self.rvalue(callee)?;
        for a in args {
            self.rvalue(a)?;
        }
        self.code.push(Insn::CallIndirect(args.len() as u8));
        Ok(())
    }

    fn builtin(&mut self, e: &Expr, name: &str, args: &[Expr]) -> CResult<()> {
        match name {
            "spawn" => {
                self.rvalue(&args[0])?;
                self.rvalue(&args[1])?;
                self.code.push(Insn::Spawn);
            }
            "join" => {
                self.rvalue(&args[0])?;
                self.code.push(Insn::Join);
            }
            "join_all" => self.code.push(Insn::JoinAll),
            "yield_now" => self.code.push(Insn::YieldNow),
            "mutex_lock" => {
                self.rvalue(&args[0])?;
                self.code.push(Insn::MutexLock);
            }
            "mutex_unlock" => {
                self.rvalue(&args[0])?;
                self.code.push(Insn::MutexUnlock);
            }
            "cond_wait" => {
                self.rvalue(&args[0])?;
                self.rvalue(&args[1])?;
                self.code.push(Insn::CondWait);
            }
            "cond_signal" => {
                self.rvalue(&args[0])?;
                self.code.push(Insn::CondSignal);
            }
            "cond_broadcast" => {
                self.rvalue(&args[0])?;
                self.code.push(Insn::CondBroadcast);
            }
            "free" => {
                self.rvalue(&args[0])?;
                self.code.push(Insn::Free);
            }
            "print" => {
                self.rvalue(&args[0])?;
                self.code.push(Insn::Print);
            }
            "print_str" => {
                self.rvalue(&args[0])?;
                if self.checks_enabled
                    && self.checked.instr.lib_read_summaries.contains(&args[0].id)
                {
                    let site = self.sites.len() as u32;
                    self.sites.push(CheckSite {
                        lvalue: format!("*{}", minic::pretty::expr(&args[0])),
                        span: e.span,
                    });
                    self.code.push(Insn::PrintStrChecked { site });
                } else {
                    self.code.push(Insn::PrintStr);
                }
            }
            "assert" => {
                self.rvalue(&args[0])?;
                self.code.push(Insn::Assert);
            }
            "random" => {
                self.rvalue(&args[0])?;
                self.code.push(Insn::Random);
            }
            other => return Err(self.err(format!("unknown builtin `{other}`"), e.span)),
        }
        Ok(())
    }

    /// Compiles `e` in address context, pushing the cell address.
    fn addr(&mut self, e: &Expr) -> CResult<()> {
        match &e.kind {
            ExprKind::Ident(name) => {
                if let Some(slot) = self.lookup_local(name) {
                    self.code.push(Insn::LocalAddr(slot));
                    Ok(())
                } else if let Some((gi, _)) = self.globals.get(name) {
                    self.code.push(Insn::GlobalAddr(*gi));
                    Ok(())
                } else {
                    Err(self.err(format!("`{name}` is not addressable"), e.span))
                }
            }
            ExprKind::Unary(UnOp::Deref, p) => self.rvalue(p),
            ExprKind::Index(base, idx) => {
                let bt = self.ty_of(base)?;
                let elem = bt
                    .pointee()
                    .or(bt.elem())
                    .cloned()
                    .ok_or_else(|| self.err("indexing a non-array", e.span))?;
                let scale = self.size_of(&elem);
                self.ptr_operand(base, &bt)?;
                self.rvalue(idx)?;
                self.code.push(Insn::IndexAddr(scale));
                Ok(())
            }
            ExprKind::Field(base, fname, arrow) => {
                let bt = self.ty_of(base)?;
                let st = if *arrow {
                    bt.pointee()
                        .cloned()
                        .ok_or_else(|| self.err("`->` on non-pointer", e.span))?
                } else {
                    bt.clone()
                };
                let TypeKind::Named(sname) = &st.kind else {
                    return Err(self.err("field access on non-struct", e.span));
                };
                let sid = self
                    .structs
                    .lookup(sname)
                    .ok_or_else(|| self.err(format!("unknown struct `{sname}`"), e.span))?;
                let (_, off) = self
                    .structs
                    .field_offset(sid, fname)
                    .ok_or_else(|| self.err(format!("no field `{fname}`"), e.span))?;
                if *arrow {
                    self.rvalue(base)?;
                } else {
                    self.addr(base)?;
                }
                if off > 0 {
                    self.code.push(Insn::ConstOffset(off as u32));
                }
                Ok(())
            }
            _ => Err(self.err("expression is not an l-value", e.span)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn compile_src(src: &str) -> Module {
        let checked = sharc_core::compile("t.c", src).unwrap();
        assert!(!checked.diags.has_errors(), "{}", checked.render_diags());
        compile(&checked).unwrap()
    }

    fn compile_src_full(src: &str) -> Module {
        let checked = sharc_core::compile("t.c", src).unwrap();
        assert!(!checked.diags.has_errors(), "{}", checked.render_diags());
        compile_full_checks(&checked).unwrap()
    }

    #[test]
    fn compiles_simple_main() {
        let m = compile_src("void main() { int x; x = 1 + 2; }");
        let main = &m.fns[m.entry as usize];
        assert!(main.code.contains(&Insn::Binop(BinOp::Add)));
        assert_eq!(main.n_slots, 1);
    }

    #[test]
    fn checked_program_emits_check_insns() {
        // The full-checks build keeps every check, even for this
        // spawn-unique shape the elision pass proves redundant.
        let m = compile_src_full(
            "void worker(int * d) { *d = 1; }\n\
             void main() { int * q; q = new(int); spawn(worker, q); }",
        );
        let worker = &m.fns[m.fn_index("worker").unwrap() as usize];
        assert!(worker
            .code
            .iter()
            .any(|i| matches!(i, Insn::ChkWrite { .. })));
        assert!(!m.sites.is_empty());
        assert_eq!(m.elision.elided, 0);
        assert!(m.elision.emitted > 0);
    }

    #[test]
    fn spawn_unique_checks_are_elided_by_default() {
        let m = compile_src(
            "void worker(int * d) { *d = 1; }\n\
             void main() { int * q; q = new(int); spawn(worker, q); }",
        );
        let worker = &m.fns[m.fn_index("worker").unwrap() as usize];
        assert!(!worker
            .code
            .iter()
            .any(|i| matches!(i, Insn::ChkWrite { .. } | Insn::ChkRead { .. })));
        assert_eq!(m.elision.emitted, 0);
        assert!(m.elision.elided > 0);
    }

    #[test]
    fn locked_access_emits_lock_check() {
        let m = compile_src_full(
            "struct q { mutex * m; int locked(m) c; };\n\
             void worker(struct q * w) { mutex_lock(w->m); w->c = 1; mutex_unlock(w->m); }\n\
             void main() { struct q * w; w = new(struct q); spawn(worker, w); }",
        );
        let worker = &m.fns[m.fn_index("worker").unwrap() as usize];
        assert!(worker
            .code
            .iter()
            .any(|i| matches!(i, Insn::ChkLockHeld { .. })));
    }

    #[test]
    fn lock_dominated_check_is_elided_by_default() {
        let m = compile_src(
            "struct q { mutex * m; int locked(m) c; };\n\
             void worker(struct q * w) { mutex_lock(w->m); w->c = 1; mutex_unlock(w->m); }\n\
             void main() { struct q * w; w = new(struct q); spawn(worker, w); }",
        );
        let worker = &m.fns[m.fn_index("worker").unwrap() as usize];
        assert!(!worker
            .code
            .iter()
            .any(|i| matches!(i, Insn::ChkLockHeld { .. })));
        assert!(m.elision.elided > 0);
    }

    #[test]
    fn compound_assign_read_collapses_into_the_write_check() {
        let src = "int dynamic g;\n\
             void worker(int * d) { g = g + 1; }\n\
             void main() { int * p; p = new(int); spawn(worker, p); g = g + 1; }";
        let m = compile_src(src);
        let worker = &m.fns[m.fn_index("worker").unwrap() as usize];
        let reads = worker
            .code
            .iter()
            .filter(|i| matches!(i, Insn::ChkRead { .. }))
            .count();
        let writes = worker
            .code
            .iter()
            .filter(|i| matches!(i, Insn::ChkWrite { .. }))
            .count();
        assert_eq!(reads, 0, "read of `g` should collapse into the write");
        assert_eq!(writes, 1);
        assert!(m.elision.collapsed >= 2);
        // The full-checks build keeps the separate read.
        let full = compile_src_full(src);
        let fw = &full.fns[full.fn_index("worker").unwrap() as usize];
        assert!(fw.code.iter().any(|i| matches!(i, Insn::ChkRead { .. })));
        assert_eq!(full.elision.collapsed, 0);
    }

    #[test]
    fn scast_emits_oneref() {
        let m = compile_src(
            "void worker(char * d) { char private * l; l = SCAST(char private *, d); l[0] = 'x'; }\n\
             void main() { char * c; c = newarray(char, 4); spawn(worker, c); }",
        );
        let worker = &m.fns[m.fn_index("worker").unwrap() as usize];
        assert!(worker.code.iter().any(|i| matches!(i, Insn::OneRef { .. })));
    }

    #[test]
    fn missing_main_is_error() {
        let checked = sharc_core::compile("t.c", "void f() { }").unwrap();
        assert!(compile(&checked).is_err());
    }

    #[test]
    fn global_initializers() {
        let m = compile_src("int g = 7; void main() { }");
        assert_eq!(m.global_inits[0][0], Value::Int(7));
    }

    #[test]
    fn struct_locals_get_sized_slots() {
        let m = compile_src(
            "struct pair { int a; int b; };\n\
             void main() { struct pair p; p.a = 1; p.b = 2; }",
        );
        let main = &m.fns[m.entry as usize];
        assert_eq!(main.slot_sizes, vec![2]);
    }
}
