//! Bytecode for the MiniC virtual machine.
//!
//! A compact stack machine. Preemption happens between instructions,
//! so races are exposed at memory-access granularity — the same
//! granularity SharC's runtime checks operate at.

use minic::span::Span;
use std::fmt;

/// A cell address in VM memory. Address 0 is the null pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Addr(pub u32);

impl Addr {
    pub const NULL: Addr = Addr(0);

    /// True if this is the null address.
    pub fn is_null(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Render like a real pointer, as the paper's reports do
        // (e.g. `0x75324464`): cells are 8 bytes.
        write!(f, "0x{:08x}", 0x1000_0000u64 + (self.0 as u64) * 8)
    }
}

/// A runtime value occupying one memory cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Value {
    Int(i64),
    Ptr(Addr),
    /// A function "address" (index into the program's function list).
    Fn(u32),
}

impl Value {
    /// Zero/null, the initial content of every cell.
    pub const ZERO: Value = Value::Int(0);

    /// Truthiness for conditions.
    pub fn is_truthy(self) -> bool {
        match self {
            Value::Int(v) => v != 0,
            Value::Ptr(a) => !a.is_null(),
            Value::Fn(_) => true,
        }
    }

    /// The integer content.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an integer (a VM bug: the checker
    /// guarantees shape correctness).
    pub fn as_int(self) -> i64 {
        match self {
            Value::Int(v) => v,
            Value::Ptr(a) => a.0 as i64,
            Value::Fn(f) => f as i64,
        }
    }
}

impl Default for Value {
    fn default() -> Self {
        Value::ZERO
    }
}

/// A check site: debug info carried by check instructions and used in
/// conflict reports.
#[derive(Debug, Clone)]
pub struct CheckSite {
    /// The l-value as written in the source (`S->sdata`).
    pub lvalue: String,
    pub span: Span,
}

/// One VM instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Insn {
    // --- stack ---
    PushInt(i64),
    PushNull,
    PushFn(u32),
    Dup,
    Pop,
    Swap,

    // --- addressing ---
    /// Push the address of local slot `n` in the current frame.
    LocalAddr(u16),
    /// Push the address of a global.
    GlobalAddr(u32),
    /// Push the address of interned string `n`'s first cell.
    StrAddr(u32),
    /// addr, idx -> addr + idx * scale.
    IndexAddr(u32),
    /// addr -> addr + offset.
    ConstOffset(u32),

    // --- memory ---
    /// addr -> value.
    Load,
    /// addr, value -> (writes one cell).
    Store,
    /// dst, src -> (copies `n` cells; struct assignment).
    CopyN(u32),

    // --- arithmetic ---
    Binop(minic::ast::BinOp),
    Neg,
    Not,
    BitNot,

    // --- control ---
    Jump(u32),
    /// Pops; jumps if falsy.
    JumpIfZero(u32),
    /// Pops; jumps if truthy.
    JumpIfNonZero(u32),
    Call(u32, u8),
    /// fnval, args... -> result (pops callee from *under* the args).
    CallIndirect(u8),
    Ret(bool),

    // --- threads & sync ---
    /// fnval, argval -> tid.
    Spawn,
    /// tid -> (blocks until that thread is done).
    Join,
    JoinAll,
    /// mutexaddr -> (blocks until acquired).
    MutexLock,
    MutexUnlock,
    /// condaddr, mutexaddr -> (atomically release + wait).
    CondWait,
    CondSignal,
    CondBroadcast,
    YieldNow,

    // --- allocation ---
    /// -> ptr (allocates `size` zeroed cells).
    New(u32),
    /// count -> ptr (allocates `count * elem_size` zeroed cells).
    NewArray(u32),
    /// ptr -> (frees the object).
    Free,

    // --- builtins ---
    /// value -> (records output).
    Print,
    /// charptr -> (records output string).
    PrintStr,
    /// charptr -> (records output string); performs the trusted
    /// library read summary: `chkread` over the cells read.
    PrintStrChecked {
        site: u32,
    },
    /// value -> (fails thread if falsy).
    Assert,
    /// n -> uniform random in [0, n).
    Random,

    // --- SharC runtime checks ---
    /// Peeks the address on top; performs the dynamic-mode read
    /// check over `size` cells for check site `site`.
    ChkRead {
        site: u32,
        size: u32,
    },
    /// Same for writes.
    ChkWrite {
        site: u32,
        size: u32,
    },
    /// Pops a mutex address; fails unless the current thread holds it.
    ChkLockHeld {
        site: u32,
    },
    /// Peeks the pointer value on top; fails if other references to
    /// the object exist (`oneref`); on success clears the object's
    /// reader/writer sets (the sharing cast's mode change).
    OneRef {
        site: u32,
    },
}

/// A compiled function.
#[derive(Debug, Clone)]
pub struct FnCode {
    pub name: String,
    /// Total local slots (params first).
    pub n_slots: u16,
    pub n_params: u8,
    pub code: Vec<Insn>,
    /// Cell sizes of each local slot's object (params are 1 cell).
    pub slot_sizes: Vec<u32>,
}

/// Static-elision accounting for a compiled module: how many check
/// slots the front end proved redundant (and so were never emitted as
/// instructions), versus how many survived to bytecode.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElisionCounts {
    /// Check slots that became `Chk*` instructions.
    pub emitted: u64,
    /// Check slots deleted outright by the elision facts.
    pub elided: u64,
    /// Compound-assignment reads collapsed into their write check.
    pub collapsed: u64,
}

/// A compiled program ready to run on the VM.
#[derive(Debug, Clone)]
pub struct Module {
    pub fns: Vec<FnCode>,
    /// Index of `main` in `fns`.
    pub entry: u32,
    /// Global variable sizes, in declaration order.
    pub global_sizes: Vec<u32>,
    /// Global initial values (constant initializers), cell-indexed
    /// per global.
    pub global_inits: Vec<Vec<Value>>,
    /// Interned string literals (byte per cell, NUL-terminated).
    pub strings: Vec<Vec<u8>>,
    /// Check sites referenced by check instructions.
    pub sites: Vec<CheckSite>,
    /// Source file name (for reports).
    pub file: String,
    /// How many check slots were emitted vs statically elided.
    pub elision: ElisionCounts,
}

impl Module {
    /// Looks up a function index by name.
    pub fn fn_index(&self, name: &str) -> Option<u32> {
        self.fns
            .iter()
            .position(|f| f.name == name)
            .map(|i| i as u32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_null_and_display() {
        assert!(Addr::NULL.is_null());
        assert!(!Addr(5).is_null());
        assert_eq!(Addr(0).to_string(), "0x10000000");
        assert_eq!(Addr(2).to_string(), "0x10000010");
    }

    #[test]
    fn value_truthiness() {
        assert!(!Value::Int(0).is_truthy());
        assert!(Value::Int(-3).is_truthy());
        assert!(!Value::Ptr(Addr::NULL).is_truthy());
        assert!(Value::Ptr(Addr(1)).is_truthy());
        assert!(Value::Fn(0).is_truthy());
    }

    #[test]
    fn value_as_int() {
        assert_eq!(Value::Int(42).as_int(), 42);
        assert_eq!(Value::Ptr(Addr(7)).as_int(), 7);
    }
}
