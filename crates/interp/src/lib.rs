//! # sharc-interp
//!
//! The execution half of the SharC reproduction: a bytecode VM that
//! runs instrumented MiniC programs with multiple simulated threads
//! under a seeded scheduler, executing the paper's runtime checks
//! (reader/writer sets per 16-byte granule, held-lock logs, and
//! reference-counted sharing casts), plus the §3 formal core calculus
//! in [`formal`].
//!
//! ## Example
//!
//! ```
//! use sharc_interp::{compile, vm};
//!
//! let src = r#"
//!     void worker(int * d) { *d = *d + 1; }
//!     void main() {
//!         int * p;
//!         p = new(int);
//!         spawn(worker, p);
//!         spawn(worker, p);
//!         join_all();
//!     }
//! "#;
//! let checked = sharc_core::compile("racy.c", src)?;
//! let module = compile::compile(&checked)?;
//! let out = vm::run(&module, &checked.source_map, vm::VmConfig::default());
//! // Two unsynchronized writers race on *p: SharC reports it.
//! assert!(!out.reports.is_empty());
//! # Ok::<(), minic::Diagnostic>(())
//! ```

pub mod bytecode;
pub mod compile;
pub mod formal;
pub mod report;
pub mod vm;

pub use bytecode::{Addr, ElisionCounts, Module, Value};
pub use compile::{compile as compile_module, compile_full_checks};
pub use report::{ConflictKind, ConflictReport};
pub use vm::{run, ExitStatus, RunOutcome, SchedPolicy, TraceEvent, VmConfig, VmStats};

/// Compiles and runs MiniC source in one call.
///
/// # Errors
///
/// Returns the first front-end diagnostic if the program does not
/// parse, check, or compile. Sharing-strategy *errors* do not prevent
/// execution only if they are warnings/suggestions; hard errors abort.
pub fn compile_and_run(
    name: &str,
    src: &str,
    config: VmConfig,
) -> Result<RunOutcome, minic::Diagnostic> {
    let checked = sharc_core::compile(name, src)?;
    if checked.diags.has_errors() {
        let first = checked
            .diags
            .iter()
            .find(|d| d.severity == minic::Severity::Error)
            .expect("has_errors implies an error exists")
            .clone();
        return Err(first);
    }
    let module = compile::compile(&checked)?;
    Ok(vm::run(&module, &checked.source_map, config))
}
