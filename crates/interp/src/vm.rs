//! The MiniC virtual machine with SharC's runtime checking.
//!
//! Executes [`Module`] bytecode with multiple simulated threads,
//! preemptible between instructions under a seeded scheduler, so race
//! exposure is reproducible. Implements the paper's runtime (§4.2):
//!
//! * **Reader/writer sets** per 16-byte granule of memory (2 cells),
//!   updated atomically with each `chkread`/`chkwrite`; the
//!   n-readers-xor-1-writer rule of the formal semantics.
//! * **Held-lock logs** per thread, consulted by `locked(l)` checks.
//! * **Exact reference counts** maintained on every pointer store,
//!   consulted by `oneref` at sharing casts, which also null the
//!   source and clear the object's reader/writer sets.
//! * **Cleanup** on `free` and thread exit (a thread's bits are
//!   cleared when it ends; non-overlapping lifetimes do not race).

use crate::bytecode::*;
use crate::report::{ConflictKind, ConflictReport, Reporter};
use minic::ast::BinOp;
use minic::span::SourceMap;
use sharc_checker::step::{bitmap, Access, Transition};
use sharc_checker::{EpochTable, OwnedCache};
use sharc_testkit::rng::{Rng, Xoshiro256pp};
use std::collections::{HashMap, HashSet, VecDeque};

/// Maximum simultaneously-live threads (the paper's encoding supports
/// `8n - 1` threads for `n` shadow bytes; a `u64` mask gives us 63).
pub const MAX_THREADS: usize = sharc_checker::MAX_CHECKED_THREADS;

// The VM's simulated threads and the real-thread runtime must agree
// on the bitmap width; both are pinned by the checker core.
const _: () = assert!(MAX_THREADS == 63);

/// Granules per epoch region in the VM (power of two). The VM's heap
/// is small and grows on demand, so a small block keeps point frees
/// local: with the default [`VmConfig::epoch_regions`] = 64 regions
/// the table covers 512 distinct granules (4 KiB of modelled memory
/// at the 16-byte granule) before indices wrap — conservative past
/// that, never unsound.
const VM_GRANULES_PER_REGION: usize = 8;

/// One memory/synchronization event of an execution, for feeding
/// trace-based race detectors (cross-validation against the §6.2
/// baselines). Collected only when [`VmConfig::collect_trace`] is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    Read {
        tid: u8,
        addr: u32,
    },
    Write {
        tid: u8,
        addr: u32,
    },
    Acquire {
        tid: u8,
        lock: u32,
    },
    Release {
        tid: u8,
        lock: u32,
    },
    Fork {
        tid: u8,
        child: u8,
    },
    Join {
        tid: u8,
        child: u8,
    },
    Alloc {
        addr: u32,
        size: u32,
    },
    /// A successful or failed `SCAST` over `[addr, addr + size)`;
    /// `refs` is the reference count `oneref` observed.
    SharingCast {
        tid: u8,
        addr: u32,
        size: u32,
        refs: u32,
    },
    /// The thread ended; its shadow bits were cleared.
    ThreadExit {
        tid: u8,
    },
    /// `free(addr)`; shadow state for the region was reset.
    Free {
        addr: u32,
        size: u32,
    },
}

/// Scheduling policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Uniformly random runnable thread each step (seeded).
    Random,
    /// Round-robin with the given quantum in instructions.
    RoundRobin(u32),
}

/// VM configuration.
#[derive(Debug, Clone)]
pub struct VmConfig {
    pub seed: u64,
    pub policy: SchedPolicy,
    /// Abort after this many instructions (live-lock guard).
    pub max_steps: u64,
    /// Stop collecting after this many distinct reports.
    pub max_reports: usize,
    /// Cells per shadow granule; one cell models 8 bytes, so the
    /// default of [`sharc_checker::GRANULE_CELLS`] (= 2) models the
    /// paper's 16-byte granule.
    pub granule: u32,
    /// Halt the whole VM at the first failed check.
    pub stop_on_error: bool,
    /// Record every memory/sync event (for trace-based detectors).
    pub collect_trace: bool,
    /// Per-thread owned-granule cache mirroring the native runtime's
    /// [`OwnedCache`]: repeated private accesses skip the shadow
    /// transition entirely, guarded by per-region epochs that every
    /// shadow clear (free, sharing cast, thread exit) bumps for the
    /// region(s) actually cleared. Verdicts are identical with the
    /// cache on or off; only the work per check changes (the
    /// `vm_cache` bench group measures the delta).
    pub owned_cache: bool,
    /// Number of epoch regions guarding the owned cache
    /// ([`sharc_checker::EpochTable`]; rounded up to a power of two).
    /// `1` is the degenerate global epoch — every clear flushes every
    /// thread's whole cache, the pre-region behaviour, kept for
    /// differential comparison. Verdicts are identical for any value.
    pub epoch_regions: usize,
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig {
            seed: 0x5ac5,
            policy: SchedPolicy::Random,
            max_steps: 200_000_000,
            max_reports: 64,
            granule: sharc_checker::GRANULE_CELLS,
            stop_on_error: false,
            collect_trace: false,
            owned_cache: true,
            epoch_regions: sharc_checker::DEFAULT_REGIONS,
        }
    }
}

/// Why the VM stopped.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitStatus {
    /// All threads ran to completion.
    Completed,
    /// No thread was runnable but some were blocked.
    Deadlock,
    /// The step limit was hit.
    StepLimit,
    /// `stop_on_error` was set and a check failed, or a fatal runtime
    /// error (null dereference, assert) occurred on the main thread.
    Failed(String),
}

/// Counters describing a run.
#[derive(Debug, Clone, Copy, Default)]
pub struct VmStats {
    pub steps: u64,
    /// Memory cells read or written.
    pub total_accesses: u64,
    /// Cells covered by dynamic-mode checks (the paper's "% dynamic
    /// accesses" numerator).
    pub dynamic_accesses: u64,
    pub lock_checks: u64,
    pub oneref_checks: u64,
    pub allocations: u64,
    pub frees: u64,
    /// Distinct shadow granules ever touched (memory-overhead proxy).
    pub shadow_granules: u64,
    pub threads_spawned: u64,
    pub max_live_threads: usize,
    /// Checked granule-accesses served by the per-thread owned-granule
    /// cache (a subset of `dynamic_accesses`' granule visits).
    pub cache_hits: u64,
    /// Multi-granule checks answered whole by an owned-run summary
    /// (each such hit also adds its span to `cache_hits`).
    pub range_hits: u64,
    /// Check slots the front end statically elided (copied from the
    /// module; these never became instructions, so they cost nothing
    /// per execution).
    pub checks_elided: u64,
    /// Compound-assignment reads collapsed into their write check at
    /// compile time (also from the module).
    pub checks_collapsed: u64,
}

impl VmStats {
    /// Fraction of memory accesses that hit dynamic-mode objects.
    pub fn dynamic_fraction(&self) -> f64 {
        if self.total_accesses == 0 {
            0.0
        } else {
            self.dynamic_accesses as f64 / self.total_accesses as f64
        }
    }
}

/// The result of a run.
#[derive(Debug)]
pub struct RunOutcome {
    pub status: ExitStatus,
    pub reports: Vec<ConflictReport>,
    pub output: Vec<String>,
    pub stats: VmStats,
    /// The event trace, when [`VmConfig::collect_trace`] was set.
    pub trace: Vec<TraceEvent>,
    /// On deadlock: one line per stuck thread describing what it is
    /// waiting for.
    pub blocked: Vec<String>,
}

impl RunOutcome {
    /// True if the run completed with no conflict reports.
    pub fn is_clean(&self) -> bool {
        self.status == ExitStatus::Completed && self.reports.is_empty()
    }
}

/// Runs `module` to completion under `config`.
pub fn run(module: &Module, sm: &SourceMap, config: VmConfig) -> RunOutcome {
    Vm::new(module, sm, config).run()
}

// ----- internal machinery -----

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    Runnable,
    /// Waiting to acquire a mutex.
    Blocked(Addr),
    /// Waiting on a condition variable (remembering the mutex).
    Waiting(Addr, Addr),
    Joining(u8),
    JoiningAll,
    Done,
    Failed,
}

#[derive(Debug)]
struct Frame {
    fn_idx: u32,
    pc: u32,
    base: u32,
    /// Precomputed slot offsets within the frame.
    ops: Vec<Value>,
}

#[derive(Debug)]
struct Thread {
    id: u8,
    frames: Vec<Frame>,
    status: Status,
    held_locks: Vec<Addr>,
    /// Granules where this thread set shadow bits (cleared at exit).
    access_log: Vec<u32>,
    /// The thread's owned-granule cache (mirrors the native runtime's
    /// per-`ThreadCtx` cache; see [`VmConfig::owned_cache`]).
    owned: OwnedCache,
    /// The latest cache-served access per kind (`[read, write]`,
    /// indexed by `is_write`): a hit skips the granule's `last_*`
    /// bookkeeping, so without this a report after a hot private loop
    /// would name the stale install site. One entry per kind is
    /// enough to fix exactly that case — the hot loop's latest read
    /// (write) *is* the thread's latest read (write) hit.
    last_hit: [Option<LastHit>; 2],
}

/// Compact per-thread record of the most recent cache-served access
/// of one kind (see [`Thread::last_hit`]).
#[derive(Debug, Clone, Copy)]
struct LastHit {
    granule: u32,
    site: u32,
}

/// One shadow granule. `word` is the checker core's reader/writer
/// bitmap ([`bitmap::step`]): bit 0 = writer flag, bit `t` = thread
/// `t` has read (the writer is the thread whose bit accompanies the
/// flag). The `last_*` fields are reporting metadata only — they
/// never influence verdicts.
#[derive(Debug, Default, Clone, Copy)]
struct Granule {
    word: u64,
    last_read: Option<LastAccess>,
    last_write: Option<LastAccess>,
}

#[derive(Debug, Clone, Copy)]
struct LastAccess {
    tid: u8,
    site: u32,
}

#[derive(Debug, Clone, Copy)]
struct Obj {
    base: u32,
    size: u32,
    alive: bool,
}

#[derive(Debug, Default)]
struct MutexState {
    owner: Option<u8>,
    waiters: VecDeque<u8>,
}

struct Vm<'m> {
    module: &'m Module,
    config: VmConfig,
    rng: Xoshiro256pp,
    mem: Vec<Value>,
    obj_of: Vec<u32>, // obj id + 1; 0 = none
    objs: Vec<Obj>,
    rc: Vec<i64>,
    free_objs: Vec<u32>,
    free_blocks: HashMap<u32, Vec<u32>>,
    shadow: Vec<Granule>,
    /// Per-region clear epochs (the native runtime's exact
    /// invalidation rule): a shadow clear bumps only the region(s) it
    /// touches, and stale per-thread cache entries of those regions
    /// fail their tag compare on the next lookup. The VM's granule
    /// space grows on demand, so the table wraps granule indices
    /// modulo its region count — conservative, never unsound.
    shadow_epochs: EpochTable,
    touched_granules: HashSet<u32>,
    threads: Vec<Thread>,
    free_tids: Vec<u8>,
    next_tid: u8,
    mutexes: HashMap<Addr, MutexState>,
    cond_waiters: HashMap<Addr, VecDeque<u8>>,
    /// Per-function slot offsets (prefix sums of slot sizes).
    slot_offsets: Vec<Vec<u32>>,
    frame_sizes: Vec<u32>,
    global_addrs: Vec<u32>,
    string_addrs: Vec<u32>,
    reporter: Reporter<'m>,
    output: Vec<String>,
    stats: VmStats,
    current: usize,
    quantum_left: u32,
    trace: Vec<TraceEvent>,
    blocked: Vec<String>,
}

impl<'m> Vm<'m> {
    fn new(module: &'m Module, sm: &'m SourceMap, config: VmConfig) -> Self {
        let slot_offsets: Vec<Vec<u32>> = module
            .fns
            .iter()
            .map(|f| {
                let mut offs = Vec::with_capacity(f.slot_sizes.len());
                let mut o = 0u32;
                for &s in &f.slot_sizes {
                    offs.push(o);
                    o += s;
                }
                offs
            })
            .collect();
        let frame_sizes = module
            .fns
            .iter()
            .map(|f| f.slot_sizes.iter().sum::<u32>().max(1))
            .collect();
        let max_reports = config.max_reports;
        let shadow_epochs = EpochTable::new(config.epoch_regions, VM_GRANULES_PER_REGION);
        let mut vm = Vm {
            module,
            rng: Xoshiro256pp::seed_from_u64(config.seed),
            config,
            mem: vec![Value::ZERO], // cell 0 = null
            obj_of: vec![0],
            objs: Vec::new(),
            rc: Vec::new(),
            free_objs: Vec::new(),
            free_blocks: HashMap::new(),
            shadow: Vec::new(),
            shadow_epochs,
            touched_granules: HashSet::new(),
            threads: Vec::new(),
            free_tids: Vec::new(),
            next_tid: 1,
            mutexes: HashMap::new(),
            cond_waiters: HashMap::new(),
            slot_offsets,
            frame_sizes,
            global_addrs: Vec::new(),
            string_addrs: Vec::new(),
            reporter: Reporter::new(sm, &module.sites, max_reports),
            output: Vec::new(),
            stats: VmStats {
                checks_elided: module.elision.elided,
                checks_collapsed: module.elision.collapsed,
                ..VmStats::default()
            },
            current: 0,
            quantum_left: 0,
            trace: Vec::new(),
            blocked: Vec::new(),
        };
        // Globals.
        for (gi, &size) in module.global_sizes.iter().enumerate() {
            let base = vm.alloc_raw(size);
            for (i, v) in module.global_inits[gi].iter().enumerate() {
                vm.mem[base as usize + i] = *v;
            }
            vm.global_addrs.push(base);
        }
        // Strings.
        for s in &module.strings {
            let base = vm.alloc_raw(s.len() as u32);
            for (i, &b) in s.iter().enumerate() {
                vm.mem[base as usize + i] = Value::Int(b as i64);
            }
            vm.string_addrs.push(base);
        }
        vm
    }

    fn global_addr(&self, gi: u32) -> u32 {
        self.global_addrs[gi as usize]
    }

    // ----- memory -----

    fn alloc_raw(&mut self, size: u32) -> u32 {
        // SharC "ensures that malloc allocates objects on a 16-byte
        // boundary" (§4.5): allocations are granule-aligned and
        // granule-padded so distinct objects never share a granule.
        let gran = self.config.granule;
        let size = size.max(1).next_multiple_of(gran);
        let base = if let Some(list) = self.free_blocks.get_mut(&size) {
            list.pop()
        } else {
            None
        };
        let base = match base {
            Some(b) => b,
            None => {
                let aligned = (self.mem.len() as u32).next_multiple_of(gran);
                self.mem.resize(aligned as usize, Value::ZERO);
                self.obj_of.resize(self.mem.len(), 0);
                let b = self.mem.len() as u32;
                self.mem.resize(self.mem.len() + size as usize, Value::ZERO);
                self.obj_of.resize(self.mem.len(), 0);
                b
            }
        };
        for c in base..base + size {
            self.mem[c as usize] = Value::ZERO;
        }
        let obj = match self.free_objs.pop() {
            Some(o) => {
                self.objs[o as usize] = Obj {
                    base,
                    size,
                    alive: true,
                };
                self.rc[o as usize] = 0;
                o
            }
            None => {
                self.objs.push(Obj {
                    base,
                    size,
                    alive: true,
                });
                self.rc.push(0);
                (self.objs.len() - 1) as u32
            }
        };
        for c in base..base + size {
            self.obj_of[c as usize] = obj + 1;
        }
        self.stats.allocations += 1;
        base
    }

    /// Allocates a frame region registering each slot as its own
    /// object (so `oneref` treats distinct locals separately).
    fn alloc_frame(&mut self, fn_idx: u32) -> u32 {
        let total = self.frame_sizes[fn_idx as usize].next_multiple_of(self.config.granule);
        let base = self.alloc_raw(total);
        // Re-partition the single object into per-slot objects;
        // padding cells (granule rounding) belong to no object.
        let whole = self.obj_of[base as usize] - 1;
        let whole_size = self.objs[whole as usize].size;
        self.kill_obj_entry(whole);
        for c in base..base + whole_size {
            self.obj_of[c as usize] = 0;
        }
        let sizes = self.module.fns[fn_idx as usize].slot_sizes.clone();
        let mut off = 0u32;
        for s in sizes {
            let b = base + off;
            let obj = match self.free_objs.pop() {
                Some(o) => {
                    self.objs[o as usize] = Obj {
                        base: b,
                        size: s,
                        alive: true,
                    };
                    self.rc[o as usize] = 0;
                    o
                }
                None => {
                    self.objs.push(Obj {
                        base: b,
                        size: s,
                        alive: true,
                    });
                    self.rc.push(0);
                    (self.objs.len() - 1) as u32
                }
            };
            for c in b..b + s {
                self.obj_of[c as usize] = obj + 1;
            }
            off += s;
        }
        base
    }

    fn kill_obj_entry(&mut self, obj: u32) {
        self.objs[obj as usize].alive = false;
        self.free_objs.push(obj);
    }

    fn rc_adjust(&mut self, v: Value, delta: i64) {
        if let Value::Ptr(a) = v {
            if a.is_null() || a.0 as usize >= self.obj_of.len() {
                return;
            }
            let o = self.obj_of[a.0 as usize];
            if o != 0 {
                self.rc[(o - 1) as usize] += delta;
            }
        }
    }

    fn write_cell(&mut self, addr: u32, v: Value) {
        let old = self.mem[addr as usize];
        self.rc_adjust(old, -1);
        self.rc_adjust(v, 1);
        self.mem[addr as usize] = v;
    }

    /// Releases an object's cells: decrement refs held in them, clear
    /// shadow state, recycle the block.
    fn release_region(&mut self, base: u32, size: u32) {
        for c in base..base + size {
            let old = self.mem[c as usize];
            self.rc_adjust(old, -1);
            self.mem[c as usize] = Value::ZERO;
            self.obj_of[c as usize] = 0;
        }
        let g0 = base / self.config.granule;
        let g1 = (base + size - 1) / self.config.granule;
        for g in g0..=g1 {
            if (g as usize) < self.shadow.len() {
                self.shadow[g as usize] = Granule::default();
            }
        }
        // Bump only the region(s) covering the freed object: every
        // other region's cached entries stay live.
        self.shadow_epochs
            .bump_granule_range(g0 as usize, g1 as usize + 1);
        self.free_blocks.entry(size).or_default().push(base);
    }

    // ----- shadow -----

    fn granule_mut(&mut self, g: u32) -> &mut Granule {
        if g as usize >= self.shadow.len() {
            self.shadow.resize(g as usize + 1, Granule::default());
        }
        if self.touched_granules.insert(g) {
            self.stats.shadow_granules += 1;
        }
        &mut self.shadow[g as usize]
    }

    /// The shared check-and-record over the unified transition
    /// function: conflicts are reported and — exactly like the real
    /// runtime and the reference backend — do *not* modify the
    /// shadow word, so all three engines agree on every verdict.
    fn chk_access(&mut self, tid: u8, addr: u32, size: u32, site: u32, access: Access) {
        self.stats.dynamic_accesses += size as u64;
        let gran = self.config.granule;
        let g0 = addr / gran;
        let g1 = (addr + size - 1) / gran;
        let is_write = matches!(access, Access::Write);
        // Ranged fast path: a bulk op (struct copy, checked library
        // sweep) spans several granules, and a single owned-run probe
        // can answer the whole sweep.  The stamp is the wrapping sum
        // of the covered region epochs, read *before* any transition
        // below so a summary can never be newer than the epochs
        // guarding it; any clear in the range bumps a covered epoch
        // and fails the compare.
        let span = (g1 - g0 + 1) as usize;
        let run_stamp = if self.config.owned_cache && span > 1 {
            let stamp = self
                .shadow_epochs
                .epoch_sum_of_range(g0 as usize, g1 as usize + 1);
            if self.threads[self.current]
                .owned
                .lookup_run(stamp, g0 as usize, span, is_write)
            {
                self.stats.cache_hits += span as u64;
                self.stats.range_hits += 1;
                self.threads[self.current].last_hit[is_write as usize] =
                    Some(LastHit { granule: g1, site });
                return;
            }
            Some(stamp)
        } else {
            None
        };
        let mut clean = true;
        for gi in g0..=g1 {
            // Owned-granule fast path: a cache hit proves this thread
            // already holds the exact ownership the access needs
            // (read bit for reads, exclusive writer state for
            // writes), so the transition would be `Unchanged` — skip
            // it. Every shadow clear bumps the epoch of the region(s)
            // it touches; entries tagged with an older region epoch
            // fail their compare on the next lookup, while entries
            // for unaffected regions keep answering.
            // Read the region epoch *before* the transition below, so
            // an entry can never be newer than the epoch guarding it.
            let region_epoch = self.shadow_epochs.epoch_of(gi as usize);
            if self.config.owned_cache
                && self.threads[self.current]
                    .owned
                    .lookup(region_epoch, gi as usize, is_write)
            {
                self.stats.cache_hits += 1;
                // The granule's `last_*` bookkeeping is skipped on
                // hits; remember the site per thread so a later
                // conflict report can still name the true latest
                // access (see `Thread::last_hit`).
                self.threads[self.current].last_hit[is_write as usize] =
                    Some(LastHit { granule: gi, site });
                continue;
            }
            let (t, last) = {
                let g = self.granule_mut(gi);
                // Report another thread's access as the "last" one
                // (offending writer first on write conflicts),
                // remembering which kind of record it came from.
                let last = match access {
                    Access::Read => g.last_write.filter(|l| l.tid != tid).map(|l| (l, true)),
                    Access::Write => g
                        .last_write
                        .filter(|l| l.tid != tid)
                        .map(|l| (l, true))
                        .or(g.last_read.filter(|l| l.tid != tid).map(|l| (l, false))),
                };
                (bitmap::step(g.word, tid as u32, access), last)
            };
            // If the reported thread's latest touch of this granule
            // was served by its cache, the granule metadata is stale:
            // the per-thread last-hit record is newer by construction
            // (hits happen only after the recorded install).
            let last = last.map(|(l, was_write)| {
                let newer = self.threads.iter().rev().find_map(|th| {
                    (th.id == l.tid)
                        .then_some(th.last_hit[was_write as usize])
                        .flatten()
                        .filter(|h| h.granule == gi)
                });
                match newer {
                    Some(h) => LastAccess {
                        tid: l.tid,
                        site: h.site,
                    },
                    None => l,
                }
            });
            match t {
                Transition::Conflict => {
                    let kind = match access {
                        Access::Read => ConflictKind::Read,
                        Access::Write => ConflictKind::Write,
                    };
                    self.conflict(kind, Addr(gi * gran), tid, site, last);
                    clean = false;
                }
                Transition::Install(new) => {
                    let g = self.granule_mut(gi);
                    g.word = new;
                    match access {
                        Access::Read => g.last_read = Some(LastAccess { tid, site }),
                        Access::Write => g.last_write = Some(LastAccess { tid, site }),
                    }
                    self.threads[self.current].access_log.push(gi);
                    if self.config.owned_cache {
                        self.threads[self.current].owned.insert(
                            gi as usize,
                            is_write,
                            region_epoch,
                        );
                    }
                }
                Transition::Unchanged => {
                    let g = self.granule_mut(gi);
                    match access {
                        Access::Read => g.last_read = Some(LastAccess { tid, site }),
                        Access::Write => g.last_write = Some(LastAccess { tid, site }),
                    }
                    if self.config.owned_cache {
                        self.threads[self.current].owned.insert(
                            gi as usize,
                            is_write,
                            region_epoch,
                        );
                    }
                }
            }
        }
        // A clean multi-granule sweep becomes one owned-run summary:
        // the next identical bulk op is a single stamp compare.  A
        // sweep that reported a conflict is never summarized — a run
        // entry cannot remember a conflicting granule.
        if clean {
            if let Some(stamp) = run_stamp {
                self.threads[self.current]
                    .owned
                    .insert_run(g0 as usize, span, is_write, stamp);
            }
        }
    }

    fn chk_read(&mut self, tid: u8, addr: u32, size: u32, site: u32) {
        self.chk_access(tid, addr, size, site, Access::Read);
    }

    fn chk_write(&mut self, tid: u8, addr: u32, size: u32, site: u32) {
        self.chk_access(tid, addr, size, site, Access::Write);
    }

    fn conflict(
        &mut self,
        kind: ConflictKind,
        addr: Addr,
        tid: u8,
        site: u32,
        last: Option<LastAccess>,
    ) {
        self.reporter
            .conflict(kind, addr, tid, site, last.map(|l| (l.tid, l.site)));
    }

    // ----- threads -----

    fn spawn_thread(&mut self, fn_idx: u32, arg: Value) -> Option<u8> {
        let tid = match self.free_tids.pop() {
            Some(t) => t,
            None => {
                if (self.next_tid as usize) > MAX_THREADS {
                    return None;
                }
                let t = self.next_tid;
                self.next_tid += 1;
                t
            }
        };
        let base = self.alloc_frame(fn_idx);
        let fc = &self.module.fns[fn_idx as usize];
        if fc.n_params >= 1 {
            self.write_cell(base + self.slot_offsets[fn_idx as usize][0], arg);
        }
        let th = Thread {
            id: tid,
            frames: vec![Frame {
                fn_idx,
                pc: 0,
                base,
                ops: Vec::new(),
            }],
            status: Status::Runnable,
            held_locks: Vec::new(),
            access_log: Vec::new(),
            owned: OwnedCache::new(),
            last_hit: [None; 2],
        };
        self.threads.push(th);
        self.stats.threads_spawned += 1;
        let live = self
            .threads
            .iter()
            .filter(|t| !matches!(t.status, Status::Done | Status::Failed))
            .count();
        self.stats.max_live_threads = self.stats.max_live_threads.max(live);
        Some(tid)
    }

    fn thread_exit(&mut self, idx: usize, failed: bool) {
        let tid = self.threads[idx].id;
        // Clear this thread's shadow bits: non-overlapping thread
        // lifetimes do not constitute races.
        let log = std::mem::take(&mut self.threads[idx].access_log);
        // Bump each region the exiting thread actually touched, once.
        let mut bumped: HashSet<usize> = HashSet::new();
        for &g in &log {
            if bumped.insert(self.shadow_epochs.region_of(g as usize)) {
                self.shadow_epochs.bump(g as usize);
            }
        }
        for g in log {
            if (g as usize) < self.shadow.len() {
                let w = &mut self.shadow[g as usize].word;
                *w = bitmap::clear_thread(*w, tid as u32);
            }
        }
        self.emit(TraceEvent::ThreadExit { tid });
        self.threads[idx].status = if failed { Status::Failed } else { Status::Done };
        self.free_tids.push(tid);
        // Wake joiners.
        for t in &mut self.threads {
            match t.status {
                Status::Joining(j) if j == tid => t.status = Status::Runnable,
                _ => {}
            }
        }
        self.refresh_join_all();
    }

    fn refresh_join_all(&mut self) {
        let all_others_done: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.status == Status::JoiningAll)
            .map(|(i, _)| i)
            .collect();
        for i in all_others_done {
            let others_running = self
                .threads
                .iter()
                .enumerate()
                .any(|(j, t)| j != i && !matches!(t.status, Status::Done | Status::Failed));
            if !others_running {
                self.threads[i].status = Status::Runnable;
            }
        }
    }

    // ----- main loop -----

    fn run(mut self) -> RunOutcome {
        let main_base = self.alloc_frame(self.module.entry);
        self.threads.push(Thread {
            id: {
                let t = self.next_tid;
                self.next_tid += 1;
                t
            },
            frames: vec![Frame {
                fn_idx: self.module.entry,
                pc: 0,
                base: main_base,
                ops: Vec::new(),
            }],
            status: Status::Runnable,
            held_locks: Vec::new(),
            access_log: Vec::new(),
            owned: OwnedCache::new(),
            last_hit: [None; 2],
        });
        self.stats.max_live_threads = 1;

        let status = loop {
            if self.stats.steps >= self.config.max_steps {
                break ExitStatus::StepLimit;
            }
            // Pick a runnable thread.
            let runnable: Vec<usize> = self
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.status == Status::Runnable)
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                let stuck: Vec<String> = self
                    .threads
                    .iter()
                    .filter_map(|t| match t.status {
                        Status::Blocked(a) => {
                            Some(format!("thread {} blocked acquiring mutex {a}", t.id))
                        }
                        Status::Waiting(c, _) => {
                            Some(format!("thread {} waiting on condition {c}", t.id))
                        }
                        Status::Joining(j) => Some(format!("thread {} joining thread {j}", t.id)),
                        Status::JoiningAll => Some(format!("thread {} in join_all", t.id)),
                        _ => None,
                    })
                    .collect();
                break if stuck.is_empty() {
                    ExitStatus::Completed
                } else {
                    self.blocked = stuck;
                    ExitStatus::Deadlock
                };
            }
            self.current = match self.config.policy {
                SchedPolicy::Random => runnable[self.rng.gen_range(0..runnable.len())],
                SchedPolicy::RoundRobin(q) => {
                    if self.quantum_left == 0
                        || self.threads[self.current].status != Status::Runnable
                    {
                        self.quantum_left = q;
                        *runnable
                            .iter()
                            .find(|&&i| i > self.current)
                            .unwrap_or(&runnable[0])
                    } else {
                        self.quantum_left -= 1;
                        self.current
                    }
                }
            };
            self.stats.steps += 1;
            if let Err(fatal) = self.step() {
                let idx = self.current;
                self.thread_exit(idx, true);
                if self.config.stop_on_error || idx == 0 {
                    // Thread index 0 is main.
                }
                if self.config.stop_on_error {
                    break ExitStatus::Failed(fatal);
                }
            }
            if self.config.stop_on_error && !self.reporter.is_empty() {
                break ExitStatus::Failed("sharing-strategy violation".into());
            }
        };

        RunOutcome {
            status,
            reports: self.reporter.into_reports(),
            output: self.output,
            stats: self.stats,
            trace: self.trace,
            blocked: self.blocked,
        }
    }

    #[inline]
    fn emit(&mut self, e: TraceEvent) {
        if self.config.collect_trace {
            self.trace.push(e);
        }
    }

    fn frame(&mut self) -> &mut Frame {
        self.threads[self.current]
            .frames
            .last_mut()
            .expect("running thread has a frame")
    }

    fn push(&mut self, v: Value) {
        self.frame().ops.push(v);
    }

    fn pop(&mut self) -> Value {
        self.frame().ops.pop().expect("operand stack underflow")
    }

    fn peek(&mut self) -> Value {
        *self.frame().ops.last().expect("operand stack underflow")
    }

    fn pop_addr(&mut self, what: &str) -> Result<Addr, String> {
        match self.pop() {
            Value::Ptr(a) if !a.is_null() => Ok(a),
            Value::Ptr(_) => Err(format!("null pointer dereference in {what}")),
            other => Err(format!(
                "bogus pointer (integer {} used as address) in {what}",
                other.as_int()
            )),
        }
    }

    /// Executes one instruction of the current thread. `Err` kills the
    /// thread with the message.
    fn step(&mut self) -> Result<(), String> {
        let fidx = self.frame().fn_idx;
        let pc = self.frame().pc;
        let insn = self.module.fns[fidx as usize].code[pc as usize].clone();
        self.frame().pc += 1;
        let tid = self.threads[self.current].id;
        match insn {
            Insn::PushInt(v) => self.push(Value::Int(v)),
            Insn::PushNull => self.push(Value::Ptr(Addr::NULL)),
            Insn::PushFn(f) => self.push(Value::Fn(f)),
            Insn::Dup => {
                let v = self.peek();
                self.push(v);
            }
            Insn::Pop => {
                self.pop();
            }
            Insn::Swap => {
                let a = self.pop();
                let b = self.pop();
                self.push(a);
                self.push(b);
            }
            Insn::LocalAddr(slot) => {
                let base = self.frame().base;
                let off = self.slot_offsets[fidx as usize][slot as usize];
                self.push(Value::Ptr(Addr(base + off)));
            }
            Insn::GlobalAddr(gi) => {
                let a = self.global_addr(gi);
                self.push(Value::Ptr(Addr(a)));
            }
            Insn::StrAddr(si) => {
                let a = self.string_addrs[si as usize];
                self.push(Value::Ptr(Addr(a)));
            }
            Insn::IndexAddr(scale) => {
                let idx = self.pop().as_int();
                let base = self.pop();
                match base {
                    Value::Ptr(a) => {
                        let target = a.0 as i64 + idx * scale as i64;
                        if target < 0 || target as usize >= self.mem.len() + 4096 {
                            return Err("pointer arithmetic out of range".into());
                        }
                        self.push(Value::Ptr(Addr(target as u32)));
                    }
                    other => {
                        // Bogus pointer arithmetic: stay an integer.
                        self.push(Value::Int(other.as_int() + idx * scale as i64));
                    }
                }
            }
            Insn::ConstOffset(off) => {
                let base = self.pop();
                match base {
                    Value::Ptr(a) if !a.is_null() => self.push(Value::Ptr(Addr(a.0 + off))),
                    Value::Ptr(_) => return Err("null pointer field access".into()),
                    other => self.push(Value::Int(other.as_int() + off as i64)),
                }
            }
            Insn::Load => {
                let a = self.pop_addr("load")?;
                if a.0 as usize >= self.mem.len() {
                    return Err("load out of bounds".into());
                }
                self.stats.total_accesses += 1;
                self.emit(TraceEvent::Read { tid, addr: a.0 });
                let v = self.mem[a.0 as usize];
                self.push(v);
            }
            Insn::Store => {
                let v = self.pop();
                let a = self.pop_addr("store")?;
                if a.0 as usize >= self.mem.len() {
                    return Err("store out of bounds".into());
                }
                self.stats.total_accesses += 1;
                self.emit(TraceEvent::Write { tid, addr: a.0 });
                self.write_cell(a.0, v);
            }
            Insn::CopyN(n) => {
                let src = self.pop_addr("struct copy source")?;
                let dst = self.pop_addr("struct copy destination")?;
                if (src.0 + n) as usize > self.mem.len() || (dst.0 + n) as usize > self.mem.len() {
                    return Err("struct copy out of bounds".into());
                }
                self.stats.total_accesses += 2 * n as u64;
                for i in 0..n {
                    // The bulk move is visible to trace-based
                    // detectors cell by cell (ranges are a checker
                    // optimization, not a semantic change), exactly
                    // like the Load/Store pair it replaces.
                    self.emit(TraceEvent::Read {
                        tid,
                        addr: src.0 + i,
                    });
                    self.emit(TraceEvent::Write {
                        tid,
                        addr: dst.0 + i,
                    });
                    let v = self.mem[(src.0 + i) as usize];
                    self.write_cell(dst.0 + i, v);
                }
            }
            Insn::Binop(op) => {
                let b = self.pop();
                let a = self.pop();
                self.push(eval_binop(op, a, b)?);
            }
            Insn::Neg => {
                let v = self.pop().as_int();
                self.push(Value::Int(-v));
            }
            Insn::Not => {
                let v = self.pop();
                self.push(Value::Int(!v.is_truthy() as i64));
            }
            Insn::BitNot => {
                let v = self.pop().as_int();
                self.push(Value::Int(!v));
            }
            Insn::Jump(t) => self.frame().pc = t,
            Insn::JumpIfZero(t) => {
                let v = self.pop();
                if !v.is_truthy() {
                    self.frame().pc = t;
                }
            }
            Insn::JumpIfNonZero(t) => {
                let v = self.pop();
                if v.is_truthy() {
                    self.frame().pc = t;
                }
            }
            Insn::Call(f, nargs) => self.do_call(f, nargs)?,
            Insn::CallIndirect(nargs) => {
                // Callee sits under the args.
                let ops = &mut self.frame().ops;
                let idx = ops.len() - nargs as usize - 1;
                let callee = ops.remove(idx);
                match callee {
                    Value::Fn(f) => self.do_call(f, nargs)?,
                    _ => return Err("indirect call through non-function value".into()),
                }
            }
            Insn::Ret(has_val) => {
                let rv = if has_val { self.pop() } else { Value::ZERO };
                let frame = self.threads[self.current]
                    .frames
                    .pop()
                    .expect("ret with a frame");
                let size =
                    self.frame_sizes[frame.fn_idx as usize].next_multiple_of(self.config.granule);
                // Kill the per-slot objects, then release the region.
                let mut c = frame.base;
                while c < frame.base + size {
                    let o = self.obj_of[c as usize];
                    if o != 0 {
                        let obj = self.objs[(o - 1) as usize];
                        self.kill_obj_entry(o - 1);
                        c = (obj.base + obj.size).max(c + 1);
                    } else {
                        c += 1;
                    }
                }
                self.release_region(frame.base, size);
                if self.threads[self.current].frames.is_empty() {
                    let idx = self.current;
                    self.thread_exit(idx, false);
                } else {
                    self.push(rv);
                }
            }
            Insn::Spawn => {
                let arg = self.pop();
                let f = self.pop();
                let Value::Fn(fi) = f else {
                    return Err("spawn of non-function".into());
                };
                match self.spawn_thread(fi, arg) {
                    Some(t) => {
                        self.emit(TraceEvent::Fork { tid, child: t });
                        self.push(Value::Int(t as i64));
                    }
                    None => return Err(format!("thread limit ({MAX_THREADS}) exceeded")),
                }
            }
            Insn::Join => {
                let t = self.pop().as_int() as u8;
                self.emit(TraceEvent::Join { tid, child: t });
                let done = self
                    .threads
                    .iter()
                    .all(|th| th.id != t || matches!(th.status, Status::Done | Status::Failed));
                if !done {
                    self.threads[self.current].status = Status::Joining(t);
                }
            }
            Insn::JoinAll => {
                let me = self.current;
                let others_running =
                    self.threads.iter().enumerate().any(|(j, t)| {
                        j != me && !matches!(t.status, Status::Done | Status::Failed)
                    });
                if others_running {
                    self.threads[me].status = Status::JoiningAll;
                }
            }
            Insn::MutexLock => {
                let a = self.pop_addr("mutex_lock")?;
                let m = self.mutexes.entry(a).or_default();
                match m.owner {
                    None => {
                        m.owner = Some(tid);
                        self.threads[self.current].held_locks.push(a);
                        self.emit(TraceEvent::Acquire { tid, lock: a.0 });
                    }
                    Some(o) if o == tid => {
                        return Err("recursive lock of a non-recursive mutex".into())
                    }
                    Some(_) => {
                        m.waiters.push_back(tid);
                        self.threads[self.current].status = Status::Blocked(a);
                    }
                }
            }
            Insn::MutexUnlock => {
                let a = self.pop_addr("mutex_unlock")?;
                self.emit(TraceEvent::Release { tid, lock: a.0 });
                self.unlock(a, tid)?;
            }
            Insn::CondWait => {
                let ma = self.pop_addr("cond_wait mutex")?;
                let ca = self.pop_addr("cond_wait cond")?;
                let holds = self.threads[self.current].held_locks.contains(&ma);
                if !holds {
                    return Err("cond_wait without holding the mutex".into());
                }
                self.emit(TraceEvent::Release { tid, lock: ma.0 });
                self.unlock(ma, tid)?;
                self.cond_waiters.entry(ca).or_default().push_back(tid);
                self.threads[self.current].status = Status::Waiting(ca, ma);
            }
            Insn::CondSignal => {
                let ca = self.pop_addr("cond_signal")?;
                if let Some(q) = self.cond_waiters.get_mut(&ca) {
                    if let Some(w) = q.pop_front() {
                        self.wake_from_cond(w);
                    }
                }
            }
            Insn::CondBroadcast => {
                let ca = self.pop_addr("cond_broadcast")?;
                let waiters: Vec<u8> = self
                    .cond_waiters
                    .get_mut(&ca)
                    .map(|q| q.drain(..).collect())
                    .unwrap_or_default();
                for w in waiters {
                    self.wake_from_cond(w);
                }
            }
            Insn::YieldNow => {
                self.quantum_left = 0;
            }
            Insn::New(size) => {
                let b = self.alloc_raw(size);
                self.emit(TraceEvent::Alloc { addr: b, size });
                self.push(Value::Ptr(Addr(b)));
            }
            Insn::NewArray(esize) => {
                let n = self.pop().as_int();
                if n < 0 || n as u64 * esize as u64 > 64 * 1024 * 1024 {
                    return Err(format!("newarray with invalid count {n}"));
                }
                let b = self.alloc_raw((n as u32 * esize).max(1));
                self.push(Value::Ptr(Addr(b)));
            }
            Insn::Free => {
                let a = self.pop_addr("free")?;
                let o = self.obj_of[a.0 as usize];
                if o == 0 {
                    return Err("free of non-allocated memory".into());
                }
                let obj = self.objs[(o - 1) as usize];
                if obj.base != a.0 {
                    return Err("free of interior pointer".into());
                }
                self.kill_obj_entry(o - 1);
                self.emit(TraceEvent::Free {
                    addr: obj.base,
                    size: obj.size,
                });
                self.release_region(obj.base, obj.size);
                self.stats.frees += 1;
            }
            Insn::Print => {
                let v = self.pop();
                self.output.push(v.as_int().to_string());
            }
            Insn::PrintStr => {
                let a = self.pop_addr("print_str")?;
                let mut s = String::new();
                let mut c = a.0 as usize;
                while c < self.mem.len() {
                    let b = self.mem[c].as_int();
                    if b == 0 {
                        break;
                    }
                    s.push(b as u8 as char);
                    c += 1;
                }
                self.output.push(s);
            }
            Insn::PrintStrChecked { site } => {
                // The §4.4 read summary: the library reads the string,
                // so every cell read updates the reader set.
                let a = self.pop_addr("print_str")?;
                let mut s = String::new();
                let mut c = a.0 as usize;
                while c < self.mem.len() {
                    self.chk_read(tid, c as u32, 1, site);
                    self.stats.total_accesses += 1;
                    let b = self.mem[c].as_int();
                    if b == 0 {
                        break;
                    }
                    s.push(b as u8 as char);
                    c += 1;
                }
                self.output.push(s);
            }
            Insn::Assert => {
                let v = self.pop();
                if !v.is_truthy() {
                    return Err("assertion failed".into());
                }
            }
            Insn::Random => {
                let n = self.pop().as_int();
                let v = if n > 0 { self.rng.gen_range(0..n) } else { 0 };
                self.push(Value::Int(v));
            }
            Insn::ChkRead { site, size } => {
                if let Value::Ptr(a) = self.peek() {
                    if !a.is_null() {
                        self.chk_read(tid, a.0, size, site);
                    }
                }
            }
            Insn::ChkWrite { site, size } => {
                if let Value::Ptr(a) = self.peek() {
                    if !a.is_null() {
                        self.chk_write(tid, a.0, size, site);
                    }
                }
            }
            Insn::ChkLockHeld { site } => {
                self.stats.lock_checks += 1;
                let lock = self.pop();
                let held = match lock {
                    Value::Ptr(a) => self.threads[self.current].held_locks.contains(&a),
                    _ => false,
                };
                if !held {
                    let addr = match lock {
                        Value::Ptr(a) => a,
                        _ => Addr::NULL,
                    };
                    self.reporter.lock_violation(addr, tid, site);
                }
            }
            Insn::OneRef { site } => {
                self.stats.oneref_checks += 1;
                if let Value::Ptr(a) = self.peek() {
                    if !a.is_null() && (a.0 as usize) < self.obj_of.len() {
                        let o = self.obj_of[a.0 as usize];
                        if o != 0 {
                            let count = self.rc[(o - 1) as usize];
                            let obj = self.objs[(o - 1) as usize];
                            self.emit(TraceEvent::SharingCast {
                                tid,
                                addr: obj.base,
                                size: obj.size,
                                refs: (count + 1) as u32,
                            });
                            if count > 0 {
                                self.reporter.oneref_violation(a, tid, site, count + 1);
                            } else {
                                // The cast succeeds: the object changes
                                // mode, so past accesses no longer
                                // constitute sharing.
                                let g0 = obj.base / self.config.granule;
                                let g1 = (obj.base + obj.size - 1) / self.config.granule;
                                for g in g0..=g1 {
                                    if (g as usize) < self.shadow.len() {
                                        self.shadow[g as usize] = Granule::default();
                                    }
                                }
                                self.shadow_epochs
                                    .bump_granule_range(g0 as usize, g1 as usize + 1);
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }

    fn do_call(&mut self, f: u32, nargs: u8) -> Result<(), String> {
        if self.threads[self.current].frames.len() > 512 {
            return Err("call stack overflow".into());
        }
        let base = self.alloc_frame(f);
        // Pop args (right to left) into slots.
        for i in (0..nargs).rev() {
            let v = self.pop();
            let off = self.slot_offsets[f as usize][i as usize];
            self.write_cell(base + off, v);
        }
        self.threads[self.current].frames.push(Frame {
            fn_idx: f,
            pc: 0,
            base,
            ops: Vec::new(),
        });
        Ok(())
    }

    fn unlock(&mut self, a: Addr, tid: u8) -> Result<(), String> {
        let m = self.mutexes.entry(a).or_default();
        if m.owner != Some(tid) {
            return Err("unlock of a mutex not held by this thread".into());
        }
        let held = &mut self.threads[self.current].held_locks;
        if let Some(p) = held.iter().position(|&l| l == a) {
            held.remove(p);
        }
        let m = self.mutexes.get_mut(&a).expect("mutex exists");
        if let Some(w) = m.waiters.pop_front() {
            m.owner = Some(w);
            if let Some(wi) = self.threads.iter().position(|t| t.id == w) {
                self.threads[wi].status = Status::Runnable;
                self.threads[wi].held_locks.push(a);
                self.emit(TraceEvent::Acquire { tid: w, lock: a.0 });
            }
        } else {
            m.owner = None;
        }
        Ok(())
    }

    /// A signalled waiter must reacquire its mutex before running.
    fn wake_from_cond(&mut self, w: u8) {
        let Some(wi) = self.threads.iter().position(|t| t.id == w) else {
            return;
        };
        let Status::Waiting(_, ma) = self.threads[wi].status else {
            return;
        };
        let m = self.mutexes.entry(ma).or_default();
        match m.owner {
            None => {
                m.owner = Some(w);
                self.threads[wi].status = Status::Runnable;
                self.threads[wi].held_locks.push(ma);
                self.emit(TraceEvent::Acquire { tid: w, lock: ma.0 });
            }
            Some(_) => {
                m.waiters.push_back(w);
                self.threads[wi].status = Status::Blocked(ma);
            }
        }
    }
}

fn eval_binop(op: BinOp, a: Value, b: Value) -> Result<Value, String> {
    use BinOp::*;
    let (x, y) = (a.as_int(), b.as_int());
    let v = match op {
        Add => {
            // Pointer-preserving addition is handled by IndexAddr; a
            // plain Add on a pointer is a bogus-pointer computation.
            Value::Int(x.wrapping_add(y))
        }
        Sub => Value::Int(x.wrapping_sub(y)),
        Mul => Value::Int(x.wrapping_mul(y)),
        Div => {
            if y == 0 {
                return Err("division by zero".into());
            }
            Value::Int(x.wrapping_div(y))
        }
        Rem => {
            if y == 0 {
                return Err("remainder by zero".into());
            }
            Value::Int(x.wrapping_rem(y))
        }
        BitAnd => Value::Int(x & y),
        BitOr => Value::Int(x | y),
        BitXor => Value::Int(x ^ y),
        Shl => Value::Int(x.wrapping_shl(y as u32 & 63)),
        Shr => Value::Int(x.wrapping_shr(y as u32 & 63)),
        Eq => Value::Int((values_equal(a, b)) as i64),
        Ne => Value::Int((!values_equal(a, b)) as i64),
        Lt => Value::Int((x < y) as i64),
        Le => Value::Int((x <= y) as i64),
        Gt => Value::Int((x > y) as i64),
        Ge => Value::Int((x >= y) as i64),
        And | Or => unreachable!("short-circuit ops are compiled to jumps"),
    };
    Ok(v)
}

fn values_equal(a: Value, b: Value) -> bool {
    match (a, b) {
        (Value::Ptr(x), Value::Ptr(y)) => x == y,
        (Value::Fn(x), Value::Fn(y)) => x == y,
        // NULL compares equal to integer 0 and vice versa.
        _ => a.as_int() == b.as_int(),
    }
}
