//! Held-lock tracking (paper §4.2.2).
//!
//! "When a lock is acquired, the address of the lock is stored in a
//! thread private log. When a thread accesses an object in the
//! locked sharing mode, a runtime check is added that ensures the
//! required lock is in the log. When the lock is released, the
//! address of the lock is removed from the log."

use crate::events::EventSink;
use crate::shadow::ThreadId;
use sharc_checker::OwnedCache;
use sharc_testkit::sync::RawMutex;
use std::sync::Arc;

/// Identifies a lock in a [`LockRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LockId(pub usize);

/// A `locked(l)` access without `l` held.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LockNotHeld {
    pub lock: LockId,
    pub tid: ThreadId,
}

impl std::fmt::Display for LockNotHeld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "thread {} accessed locked data without holding lock {}",
            self.tid.0, self.lock.0
        )
    }
}

impl std::error::Error for LockNotHeld {}

/// Per-thread runtime context: the checked thread id, the held-lock
/// log, the shadow-granule access log (cleared at exit), and counters
/// used for the evaluation's "% dynamic accesses" column.
#[derive(Debug)]
pub struct ThreadCtx {
    pub tid: ThreadId,
    held: Vec<LockId>,
    /// Granules where this thread set a shadow bit.
    pub(crate) access_log: Vec<usize>,
    /// Conflicts observed (benign in logging mode).
    pub conflicts: usize,
    /// Checked (dynamic-mode) accesses performed.
    pub checked_accesses: u64,
    /// All accesses performed through this context.
    pub total_accesses: u64,
    /// The per-thread owned-granule epoch cache: repeated private
    /// accesses hit here and skip the shadow CAS entirely (see
    /// [`sharc_checker::OwnedCache`] for the soundness invariants).
    pub owned_cache: OwnedCache,
    /// When set, every checked access through this context is also
    /// recorded into the shared [`EventSink`] — the native-execution
    /// event spine that lets `sharc run --detector` and the bench
    /// binaries judge a *real-thread* run through any
    /// `CheckBackend`, either by replay (`EventLog`) or online
    /// (`StreamingSink`). `None` (the default) keeps the hot path
    /// free of the recording branch's work.
    pub sink: Option<Arc<dyn EventSink>>,
}

impl ThreadCtx {
    /// Creates a context for checked thread `tid` (1-based).
    pub fn new(tid: ThreadId) -> Self {
        ThreadCtx {
            tid,
            held: Vec::new(),
            access_log: Vec::new(),
            conflicts: 0,
            checked_accesses: 0,
            total_accesses: 0,
            owned_cache: OwnedCache::new(),
            sink: None,
        }
    }

    /// Creates a context whose checked accesses are mirrored into
    /// `sink` as [`sharc_checker::CheckEvent`]s.
    pub fn with_sink(tid: ThreadId, sink: Arc<dyn EventSink>) -> Self {
        let mut ctx = Self::new(tid);
        ctx.sink = Some(sink);
        ctx
    }

    /// Emits an access event if a sink is attached (called by the
    /// arena's checked paths).
    #[inline]
    pub(crate) fn emit_access(&self, granule: usize, is_write: bool) {
        if let Some(sink) = &self.sink {
            sink.record_access(self.tid.0 as u32, granule, is_write);
        }
    }

    /// Emits one ranged-access event for a whole buffer sweep if a
    /// sink is attached (called by the arena's ranged checked paths).
    #[inline]
    pub(crate) fn emit_range(&self, granule: usize, len: usize, is_write: bool) {
        if let Some(sink) = &self.sink {
            sink.record_range(self.tid.0 as u32, granule, len, is_write);
        }
    }

    /// True if `lock` is in this thread's held-lock log.
    pub fn holds(&self, lock: LockId) -> bool {
        self.held.contains(&lock)
    }

    /// The `locked(l)` runtime check.
    ///
    /// # Errors
    ///
    /// Returns [`LockNotHeld`] if the lock is not in the log.
    pub fn assert_held(&self, lock: LockId) -> Result<(), LockNotHeld> {
        if self.holds(lock) {
            Ok(())
        } else {
            Err(LockNotHeld {
                lock,
                tid: self.tid,
            })
        }
    }
}

/// A set of real mutexes with held-lock logging.
pub struct LockRegistry {
    locks: Vec<RawMutex>,
}

impl std::fmt::Debug for LockRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LockRegistry")
            .field("len", &self.locks.len())
            .finish()
    }
}

impl LockRegistry {
    /// Creates `n` unlocked mutexes.
    pub fn new(n: usize) -> Self {
        let mut locks = Vec::with_capacity(n);
        locks.resize_with(n, RawMutex::new);
        LockRegistry { locks }
    }

    /// Number of locks.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True if the registry holds no locks.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// Acquires `lock`, blocking, and records it in the thread's log.
    /// With an event sink attached, the acquisition is appended to
    /// the trace *after* the real mutex is held, so the linearized
    /// log preserves lock order.
    pub fn lock(&self, ctx: &mut ThreadCtx, lock: LockId) {
        self.locks[lock.0].lock();
        ctx.held.push(lock);
        if let Some(sink) = &ctx.sink {
            sink.record(sharc_checker::CheckEvent::Acquire {
                tid: ctx.tid.0 as u32,
                lock: lock.0,
            });
        }
    }

    /// Releases `lock` and removes it from the log.
    ///
    /// # Panics
    ///
    /// Panics if the thread's log does not contain the lock (an
    /// unlock of a mutex this thread did not acquire).
    pub fn unlock(&self, ctx: &mut ThreadCtx, lock: LockId) {
        let pos = ctx
            .held
            .iter()
            .position(|&l| l == lock)
            .expect("unlock of a lock not in the held-lock log");
        ctx.held.remove(pos);
        // Record the release *while still holding* so no other
        // thread's acquire can be logged between it and us.
        if let Some(sink) = &ctx.sink {
            sink.record(sharc_checker::CheckEvent::Release {
                tid: ctx.tid.0 as u32,
                lock: lock.0,
            });
        }
        // SAFETY: the log proves this thread acquired the lock.
        unsafe { self.locks[lock.0].unlock() };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn lock_log_tracks_held() {
        let reg = LockRegistry::new(2);
        let mut ctx = ThreadCtx::new(ThreadId(1));
        assert!(ctx.assert_held(LockId(0)).is_err());
        reg.lock(&mut ctx, LockId(0));
        assert!(ctx.assert_held(LockId(0)).is_ok());
        assert!(ctx.assert_held(LockId(1)).is_err());
        reg.unlock(&mut ctx, LockId(0));
        assert!(ctx.assert_held(LockId(0)).is_err());
    }

    #[test]
    fn nested_locks() {
        let reg = LockRegistry::new(2);
        let mut ctx = ThreadCtx::new(ThreadId(1));
        reg.lock(&mut ctx, LockId(0));
        reg.lock(&mut ctx, LockId(1));
        assert!(ctx.holds(LockId(0)) && ctx.holds(LockId(1)));
        reg.unlock(&mut ctx, LockId(0));
        assert!(!ctx.holds(LockId(0)) && ctx.holds(LockId(1)));
        reg.unlock(&mut ctx, LockId(1));
    }

    #[test]
    #[should_panic(expected = "not in the held-lock log")]
    fn unlock_without_lock_panics() {
        let reg = LockRegistry::new(1);
        let mut ctx = ThreadCtx::new(ThreadId(1));
        reg.unlock(&mut ctx, LockId(0));
    }

    #[test]
    fn mutual_exclusion_works() {
        let reg = Arc::new(LockRegistry::new(1));
        let counter = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 1..=4u8 {
            let reg = Arc::clone(&reg);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                let mut ctx = ThreadCtx::new(ThreadId(t));
                for _ in 0..1000 {
                    reg.lock(&mut ctx, LockId(0));
                    ctx.assert_held(LockId(0)).unwrap();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    reg.unlock(&mut ctx, LockId(0));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }
}
