//! The wide-tid runtime: [`Arena`]'s checked-access surface rebuilt
//! on the sharded exact shadow, for workloads that run *hundreds* of
//! real threads (the stunnel server fleet). The narrow stack caps
//! checked thread ids at `ThreadId(u8)` because its shadow words hold
//! at most 63 exact identities; [`WideArena`] carries a
//! [`ShardedShadow`] instead, so a [`WideThreadId`] up to the
//! geometry's exact capacity (63 per shard, e.g. 315 tids at 5
//! shards) keeps its precise reader/writer bit through every check.
//!
//! Everything else mirrors the narrow layer deliberately — same
//! counters, same event-spine hooks, same policy split — so a
//! workload ports from `Arena` to `WideArena` by swapping types, and
//! a recorded wide run replays through the identical `CheckEvent`
//! vocabulary.
//!
//! [`Arena`]: crate::arena::Arena

use crate::events::EventSink;
use crate::locks::LockId;
use crate::scalable::WideThreadId;
use crate::sharded::ShardedShadow;
use sharc_checker::{OwnedCache, ShadowGeometry};
use sharc_testkit::sync::RawMutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::arena::{granule_span, GRANULE_WORDS};

/// A `locked(l)` access without `l` held, reported by a wide-tid
/// context (the narrow [`crate::locks::LockNotHeld`] carries a
/// `ThreadId(u8)` and cannot name tids past 255).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WideLockNotHeld {
    pub lock: LockId,
    pub tid: WideThreadId,
}

impl std::fmt::Display for WideLockNotHeld {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "thread {} accessed locked data without holding lock {}",
            self.tid.0, self.lock.0
        )
    }
}

impl std::error::Error for WideLockNotHeld {}

/// Per-thread runtime context for wide-tid workloads: the checked
/// [`WideThreadId`], the held-lock log, the shadow-granule access log
/// (cleared at exit), the owned-granule epoch cache, and the same
/// dynamic-access counters the narrow [`crate::locks::ThreadCtx`]
/// keeps for Table 1's "% dynamic" column.
#[derive(Debug)]
pub struct WideThreadCtx {
    pub tid: WideThreadId,
    held: Vec<LockId>,
    /// Granules where this thread set a shadow bit.
    pub(crate) access_log: Vec<usize>,
    /// Conflicts observed (benign in logging mode).
    pub conflicts: usize,
    /// Checked (dynamic-mode) accesses performed.
    pub checked_accesses: u64,
    /// All accesses performed through this context.
    pub total_accesses: u64,
    /// The per-thread owned-granule epoch cache; wide checks go
    /// through [`ShardedShadow`]'s cached paths, which under real
    /// cross-shard contention is exactly what the server fleet
    /// exercises.
    pub owned_cache: OwnedCache,
    /// When set, every checked access is mirrored into the shared
    /// [`EventSink`] so the whole wide run lands on the `CheckEvent`
    /// spine — buffered whole (`EventLog`) or streamed through an
    /// online collector (`StreamingSink`).
    pub sink: Option<Arc<dyn EventSink>>,
}

impl WideThreadCtx {
    /// Creates a context for checked thread `tid` (1-based).
    pub fn new(tid: WideThreadId) -> Self {
        WideThreadCtx {
            tid,
            held: Vec::new(),
            access_log: Vec::new(),
            conflicts: 0,
            checked_accesses: 0,
            total_accesses: 0,
            owned_cache: OwnedCache::new(),
            sink: None,
        }
    }

    /// Creates a context whose checked accesses are mirrored into
    /// `sink` as [`sharc_checker::CheckEvent`]s.
    pub fn with_sink(tid: WideThreadId, sink: Arc<dyn EventSink>) -> Self {
        let mut ctx = Self::new(tid);
        ctx.sink = Some(sink);
        ctx
    }

    #[inline]
    fn emit_access(&self, granule: usize, is_write: bool) {
        if let Some(sink) = &self.sink {
            sink.record_access(self.tid.0, granule, is_write);
        }
    }

    #[inline]
    fn emit_range(&self, granule: usize, len: usize, is_write: bool) {
        if let Some(sink) = &self.sink {
            sink.record_range(self.tid.0, granule, len, is_write);
        }
    }

    /// True if `lock` is in this thread's held-lock log.
    pub fn holds(&self, lock: LockId) -> bool {
        self.held.contains(&lock)
    }

    /// The `locked(l)` runtime check.
    ///
    /// # Errors
    ///
    /// Returns [`WideLockNotHeld`] if the lock is not in the log.
    pub fn assert_held(&self, lock: LockId) -> Result<(), WideLockNotHeld> {
        if self.holds(lock) {
            Ok(())
        } else {
            Err(WideLockNotHeld {
                lock,
                tid: self.tid,
            })
        }
    }
}

/// A set of real mutexes with held-lock logging for wide-tid
/// contexts: the same acquire-after-held / release-before-unlock
/// event order as [`crate::locks::LockRegistry`], so the linearized
/// trace preserves lock order at any thread count.
pub struct WideLockRegistry {
    locks: Vec<RawMutex>,
}

impl std::fmt::Debug for WideLockRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WideLockRegistry")
            .field("len", &self.locks.len())
            .finish()
    }
}

impl WideLockRegistry {
    /// Creates `n` unlocked mutexes.
    pub fn new(n: usize) -> Self {
        let mut locks = Vec::with_capacity(n);
        locks.resize_with(n, RawMutex::new);
        WideLockRegistry { locks }
    }

    /// Number of locks.
    pub fn len(&self) -> usize {
        self.locks.len()
    }

    /// True if the registry holds no locks.
    pub fn is_empty(&self) -> bool {
        self.locks.is_empty()
    }

    /// Acquires `lock`, blocking, and records it in the thread's log.
    /// With a sink attached the acquisition is appended *after* the
    /// real mutex is held, so the log linearizes through the lock.
    pub fn lock(&self, ctx: &mut WideThreadCtx, lock: LockId) {
        self.locks[lock.0].lock();
        ctx.held.push(lock);
        if let Some(sink) = &ctx.sink {
            sink.record(sharc_checker::CheckEvent::Acquire {
                tid: ctx.tid.0,
                lock: lock.0,
            });
        }
    }

    /// Releases `lock` and removes it from the log.
    ///
    /// # Panics
    ///
    /// Panics if the thread's log does not contain the lock.
    pub fn unlock(&self, ctx: &mut WideThreadCtx, lock: LockId) {
        let pos = ctx
            .held
            .iter()
            .position(|&l| l == lock)
            .expect("unlock of a lock not in the held-lock log");
        ctx.held.remove(pos);
        // Record the release while still holding, so no other
        // thread's acquire can slot between it and us in the log.
        if let Some(sink) = &ctx.sink {
            sink.record(sharc_checker::CheckEvent::Release {
                tid: ctx.tid.0,
                lock: lock.0,
            });
        }
        // SAFETY: the log proves this thread acquired the lock.
        unsafe { self.locks[lock.0].unlock() };
    }
}

/// A word arena whose shadow is the sharded exact bitmap: the wide
/// counterpart of [`crate::arena::Arena`].
#[derive(Debug)]
pub struct WideArena {
    data: Vec<AtomicU64>,
    shadow: ShardedShadow,
}

impl WideArena {
    /// Creates an arena of `n_words` zeroed words whose shadow keeps
    /// exact identities for up to `threads` checked tids (the
    /// geometry rounds up to whole 63-tid shards).
    pub fn for_threads(n_words: usize, threads: usize) -> Self {
        Self::with_geometry(n_words, ShadowGeometry::for_threads(threads))
    }

    /// Creates an arena over an explicit shadow geometry.
    pub fn with_geometry(n_words: usize, geom: ShadowGeometry) -> Self {
        let mut data = Vec::with_capacity(n_words);
        data.resize_with(n_words, AtomicU64::default);
        let n_granules = n_words.div_ceil(GRANULE_WORDS);
        WideArena {
            data,
            shadow: ShardedShadow::with_geometry(n_granules, geom),
        }
    }

    /// Number of payload words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the arena holds no words.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes of shadow memory (the paper's memory overhead; the wide
    /// geometry pays one extra word per granule per 63 tids).
    pub fn shadow_bytes(&self) -> usize {
        self.shadow.shadow_bytes()
    }

    /// Payload bytes.
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * 8
    }

    /// An unchecked (baseline / private-mode) read.
    #[inline]
    pub fn read_unchecked(&self, i: usize) -> u64 {
        self.data[i].load(Ordering::Relaxed)
    }

    /// An unchecked (baseline / private-mode) write.
    #[inline]
    pub fn write_unchecked(&self, i: usize, v: u64) {
        self.data[i].store(v, Ordering::Relaxed);
    }

    /// A dynamic-mode read: `chkread` on the word's granule through
    /// the sharded shadow, then the load.
    #[inline]
    pub fn read_checked(&self, ctx: &mut WideThreadCtx, i: usize) -> u64 {
        ctx.checked_accesses += 1;
        let g = i / GRANULE_WORDS;
        ctx.emit_access(g, false);
        match self.shadow.check_read(g, ctx.tid) {
            Ok(true) => ctx.access_log.push(g),
            Ok(false) => {}
            Err(_) => ctx.conflicts += 1,
        }
        self.data[i].load(Ordering::Acquire)
    }

    /// A dynamic-mode write: `chkwrite`, then the store.
    #[inline]
    pub fn write_checked(&self, ctx: &mut WideThreadCtx, i: usize, v: u64) {
        ctx.checked_accesses += 1;
        let g = i / GRANULE_WORDS;
        ctx.emit_access(g, true);
        match self.shadow.check_write(g, ctx.tid) {
            Ok(true) => ctx.access_log.push(g),
            Ok(false) => {}
            Err(_) => ctx.conflicts += 1,
        }
        self.data[i].store(v, Ordering::Release);
    }

    /// [`WideArena::read_checked`] through the owned-granule epoch
    /// cache.
    #[inline]
    pub fn read_cached(&self, ctx: &mut WideThreadCtx, i: usize) -> u64 {
        ctx.checked_accesses += 1;
        let g = i / GRANULE_WORDS;
        ctx.emit_access(g, false);
        match self
            .shadow
            .check_read_cached(g, ctx.tid, &mut ctx.owned_cache)
        {
            Ok(true) => ctx.access_log.push(g),
            Ok(false) => {}
            Err(_) => ctx.conflicts += 1,
        }
        self.data[i].load(Ordering::Acquire)
    }

    /// [`WideArena::write_checked`] through the owned-granule epoch
    /// cache.
    #[inline]
    pub fn write_cached(&self, ctx: &mut WideThreadCtx, i: usize, v: u64) {
        ctx.checked_accesses += 1;
        let g = i / GRANULE_WORDS;
        ctx.emit_access(g, true);
        match self
            .shadow
            .check_write_cached(g, ctx.tid, &mut ctx.owned_cache)
        {
            Ok(true) => ctx.access_log.push(g),
            Ok(false) => {}
            Err(_) => ctx.conflicts += 1,
        }
        self.data[i].store(v, Ordering::Release);
    }

    /// A ranged dynamic-mode read: ONE `chkread` over the whole
    /// granule span, then the loads — `each(i, value)` fires once per
    /// word. Conflicts are counted per granule, as in the narrow
    /// arena.
    pub fn read_range_checked(
        &self,
        ctx: &mut WideThreadCtx,
        start: usize,
        words: usize,
        mut each: impl FnMut(usize, u64),
    ) {
        if words == 0 {
            return;
        }
        ctx.checked_accesses += words as u64;
        let (g0, glen) = granule_span(start, words);
        ctx.emit_range(g0, glen, false);
        let tid = ctx.tid;
        ctx.conflicts +=
            self.shadow
                .check_range_read(g0, glen, tid, |g| ctx.access_log.push(g), |_| {});
        for i in start..start + words {
            each(i, self.data[i].load(Ordering::Acquire));
        }
    }

    /// A ranged dynamic-mode write: one `chkwrite` over the granule
    /// span, then the stores — word `i` receives `value(i)`.
    pub fn write_range_checked(
        &self,
        ctx: &mut WideThreadCtx,
        start: usize,
        words: usize,
        mut value: impl FnMut(usize) -> u64,
    ) {
        if words == 0 {
            return;
        }
        ctx.checked_accesses += words as u64;
        let (g0, glen) = granule_span(start, words);
        ctx.emit_range(g0, glen, true);
        let tid = ctx.tid;
        ctx.conflicts +=
            self.shadow
                .check_range_write(g0, glen, tid, |g| ctx.access_log.push(g), |_| {});
        for i in start..start + words {
            self.data[i].store(value(i), Ordering::Release);
        }
    }

    /// [`WideArena::read_range_checked`] through the owned-run cache:
    /// a repeat sweep over a run this thread already owns costs one
    /// epoch-stamp compare for the whole buffer.
    pub fn read_range_cached(
        &self,
        ctx: &mut WideThreadCtx,
        start: usize,
        words: usize,
        mut each: impl FnMut(usize, u64),
    ) {
        if words == 0 {
            return;
        }
        ctx.checked_accesses += words as u64;
        let (g0, glen) = granule_span(start, words);
        ctx.emit_range(g0, glen, false);
        let tid = ctx.tid;
        ctx.conflicts += self.shadow.check_range_read_cached(
            g0,
            glen,
            tid,
            &mut ctx.owned_cache,
            |g| ctx.access_log.push(g),
            |_| {},
        );
        for i in start..start + words {
            each(i, self.data[i].load(Ordering::Acquire));
        }
    }

    /// [`WideArena::write_range_checked`] through the owned-run
    /// cache.
    pub fn write_range_cached(
        &self,
        ctx: &mut WideThreadCtx,
        start: usize,
        words: usize,
        mut value: impl FnMut(usize) -> u64,
    ) {
        if words == 0 {
            return;
        }
        ctx.checked_accesses += words as u64;
        let (g0, glen) = granule_span(start, words);
        ctx.emit_range(g0, glen, true);
        let tid = ctx.tid;
        ctx.conflicts += self.shadow.check_range_write_cached(
            g0,
            glen,
            tid,
            &mut ctx.owned_cache,
            |g| ctx.access_log.push(g),
            |_| {},
        );
        for i in start..start + words {
            self.data[i].store(value(i), Ordering::Release);
        }
    }

    /// Clears the shadow state covering `words` starting at `start`
    /// (used by `free` and after successful sharing casts): one
    /// word-level ranged clear, one epoch bump per covered region.
    pub fn clear_range(&self, start: usize, words: usize) {
        if words == 0 {
            return;
        }
        let (g0, glen) = granule_span(start, words);
        self.shadow.clear_range(g0, glen);
    }

    /// Thread exit: clears every shadow bit this thread set
    /// (non-overlapping lifetimes are not races) and records the exit
    /// on the spine. The access log is coalesced into contiguous runs
    /// first, so the clear cost scales with the footprint, not the
    /// access count.
    pub fn thread_exit(&self, ctx: &mut WideThreadCtx) {
        let tid = ctx.tid;
        ctx.owned_cache.invalidate_all();
        crate::arena::drain_logged_runs(&mut ctx.access_log, |start, len| {
            self.shadow.clear_thread_range(start, len, tid)
        });
        if let Some(sink) = &ctx.sink {
            sink.record(sharc_checker::CheckEvent::ThreadExit { tid: tid.0 });
        }
    }

    /// Direct access to the sharded shadow, for tests and detectors.
    pub fn shadow(&self) -> &ShardedShadow {
        &self.shadow
    }
}

/// The wide counterpart of [`crate::arena::AccessPolicy`]: a
/// workload written against this trait monomorphizes into a baseline
/// build ([`WideUnchecked`]) and a SharC build ([`WideChecked`]).
pub trait WidePolicy {
    const NAME: &'static str;
    fn read(a: &WideArena, ctx: &mut WideThreadCtx, i: usize) -> u64;
    fn write(a: &WideArena, ctx: &mut WideThreadCtx, i: usize, v: u64);
    fn read_range(
        a: &WideArena,
        ctx: &mut WideThreadCtx,
        start: usize,
        words: usize,
        each: &mut dyn FnMut(usize, u64),
    );
    fn write_range(
        a: &WideArena,
        ctx: &mut WideThreadCtx,
        start: usize,
        words: usize,
        value: &mut dyn FnMut(usize) -> u64,
    );
}

/// Baseline: raw loads and stores, counters only.
#[derive(Debug)]
pub struct WideUnchecked;

impl WidePolicy for WideUnchecked {
    const NAME: &'static str = "orig";

    #[inline]
    fn read(a: &WideArena, ctx: &mut WideThreadCtx, i: usize) -> u64 {
        ctx.total_accesses += 1;
        a.read_unchecked(i)
    }

    #[inline]
    fn write(a: &WideArena, ctx: &mut WideThreadCtx, i: usize, v: u64) {
        ctx.total_accesses += 1;
        a.write_unchecked(i, v);
    }

    fn read_range(
        a: &WideArena,
        ctx: &mut WideThreadCtx,
        start: usize,
        words: usize,
        each: &mut dyn FnMut(usize, u64),
    ) {
        ctx.total_accesses += words as u64;
        for i in start..start + words {
            each(i, a.read_unchecked(i));
        }
    }

    fn write_range(
        a: &WideArena,
        ctx: &mut WideThreadCtx,
        start: usize,
        words: usize,
        value: &mut dyn FnMut(usize) -> u64,
    ) {
        ctx.total_accesses += words as u64;
        for i in start..start + words {
            a.write_unchecked(i, value(i));
        }
    }
}

/// The SharC build: every access runs the sharded dynamic check
/// through the owned-granule/owned-run caches — the cached paths
/// under real contention, which is what the wide fleet exists to
/// exercise.
#[derive(Debug)]
pub struct WideChecked;

impl WidePolicy for WideChecked {
    const NAME: &'static str = "sharc";

    #[inline]
    fn read(a: &WideArena, ctx: &mut WideThreadCtx, i: usize) -> u64 {
        ctx.total_accesses += 1;
        a.read_cached(ctx, i)
    }

    #[inline]
    fn write(a: &WideArena, ctx: &mut WideThreadCtx, i: usize, v: u64) {
        ctx.total_accesses += 1;
        a.write_cached(ctx, i, v);
    }

    fn read_range(
        a: &WideArena,
        ctx: &mut WideThreadCtx,
        start: usize,
        words: usize,
        each: &mut dyn FnMut(usize, u64),
    ) {
        ctx.total_accesses += words as u64;
        a.read_range_cached(ctx, start, words, each);
    }

    fn write_range(
        a: &WideArena,
        ctx: &mut WideThreadCtx,
        start: usize,
        words: usize,
        value: &mut dyn FnMut(usize) -> u64,
    ) {
        ctx.total_accesses += words as u64;
        a.write_range_cached(ctx, start, words, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::EventLog;

    #[test]
    fn wide_tids_keep_exact_identities_past_63() {
        let a = WideArena::for_threads(8, 256);
        let mut lo = WideThreadCtx::new(WideThreadId(1));
        let mut hi = WideThreadCtx::new(WideThreadId(200));
        a.write_checked(&mut lo, 0, 7);
        assert_eq!(lo.conflicts, 0);
        // A second writer on the same granule is a real conflict —
        // and must be *attributed*, not collapsed into an adaptive
        // overflow bit.
        a.write_checked(&mut hi, 1, 9);
        assert_eq!(hi.conflicts, 1);
        assert_eq!(a.read_unchecked(0), 7);
    }

    #[test]
    fn thread_exit_enables_reuse_across_shards() {
        let a = WideArena::for_threads(4, 256);
        let mut first = WideThreadCtx::new(WideThreadId(70));
        a.write_cached(&mut first, 0, 1);
        a.thread_exit(&mut first);
        let mut second = WideThreadCtx::new(WideThreadId(140));
        a.write_cached(&mut second, 0, 2);
        assert_eq!(second.conflicts, 0, "exited writer's bits are gone");
    }

    #[test]
    fn ranged_sweep_counts_conflicts_per_granule() {
        let a = WideArena::for_threads(GRANULE_WORDS * 4, 128);
        let mut owner = WideThreadCtx::new(WideThreadId(90));
        a.write_range_checked(&mut owner, 0, GRANULE_WORDS * 4, |i| i as u64);
        assert_eq!(owner.conflicts, 0);
        let mut intruder = WideThreadCtx::new(WideThreadId(3));
        a.write_range_checked(&mut intruder, 0, GRANULE_WORDS * 4, |_| 0);
        assert_eq!(intruder.conflicts, 4, "one report per conflicting granule");
    }

    #[test]
    fn clear_range_models_the_sharing_cast() {
        let a = WideArena::for_threads(GRANULE_WORDS * 2, 256);
        let mut acceptor = WideThreadCtx::new(WideThreadId(1));
        a.write_range_checked(&mut acceptor, 0, GRANULE_WORDS * 2, |i| i as u64);
        a.clear_range(0, GRANULE_WORDS * 2);
        let mut worker = WideThreadCtx::new(WideThreadId(250));
        a.read_range_cached(&mut worker, 0, GRANULE_WORDS * 2, |_, _| {});
        a.write_range_cached(&mut worker, 0, GRANULE_WORDS * 2, |i| i as u64 + 1);
        assert_eq!(worker.conflicts, 0, "cast hands the buffer off cleanly");
    }

    #[test]
    fn wide_lock_registry_tracks_held() {
        let reg = WideLockRegistry::new(2);
        let mut ctx = WideThreadCtx::new(WideThreadId(300));
        assert!(ctx.assert_held(LockId(0)).is_err());
        reg.lock(&mut ctx, LockId(0));
        assert!(ctx.assert_held(LockId(0)).is_ok());
        assert!(ctx.assert_held(LockId(1)).is_err());
        reg.unlock(&mut ctx, LockId(0));
        assert!(ctx.assert_held(LockId(0)).is_err());
    }

    #[test]
    fn policies_agree_on_values_and_the_spine_sees_wide_tids() {
        let sink = Arc::new(EventLog::new());
        let a = WideArena::for_threads(GRANULE_WORDS * 2, 256);
        let mut ctx = WideThreadCtx::with_sink(WideThreadId(200), sink.clone());
        WideChecked::write(&a, &mut ctx, 0, 42);
        assert_eq!(WideChecked::read(&a, &mut ctx, 0), 42);
        assert_eq!(WideUnchecked::read(&a, &mut ctx, 0), 42);
        let evs = sink.snapshot();
        assert!(evs
            .iter()
            .any(|e| matches!(e, sharc_checker::CheckEvent::Write { tid: 200, .. })));
    }
}
