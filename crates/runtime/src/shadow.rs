//! Shadow memory implementing the paper's reader/writer-set encoding
//! (§4.2.1), for real threads with atomic updates.
//!
//! The granule state machine itself lives in `sharc-checker`
//! ([`sharc_checker::step::bitmap`]): this module is the thin
//! compare-exchange retry loop around the pure transition function —
//! the portable equivalent of the paper's `cmpxchg` on x86. With `n`
//! shadow bytes the encoding supports `8n − 1` threads.
//!
//! On top of the CAS path sits the *owned-granule epoch cache* fast
//! path ([`Shadow::check_read_cached`] /
//! [`Shadow::check_write_cached`]): a per-thread [`OwnedCache`]
//! skips the atomic check entirely on repeated private accesses,
//! guarded by a per-region [`EpochTable`] — every clear bumps only
//! the epoch of the region containing the cleared granule, so caches
//! keep their entries for unrelated regions alive. See
//! `sharc_checker::cache` and `sharc_checker::epoch` for the
//! soundness invariants; [`Shadow::with_epoch_regions`] with
//! `regions = 1` reproduces the old single-global-epoch behaviour.

use sharc_checker::step::{bitmap, range, Access, Transition};
use sharc_checker::{EpochTable, OwnedCache};
use std::sync::atomic::{AtomicU16, AtomicU32, AtomicU64, AtomicU8, Ordering};

/// A checked-thread identifier: `1 ..= 8n - 1` for a width of `n`
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId(pub u8);

/// A race detected by a shadow check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceError {
    /// The granule index where the conflict occurred.
    pub granule: usize,
    /// True if the failing access was a write.
    pub was_write: bool,
    /// The raw shadow bits observed (for diagnosis).
    pub observed: u64,
}

impl std::fmt::Display for RaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} conflict at granule {} (shadow bits {:#b})",
            if self.was_write { "write" } else { "read" },
            self.granule,
            self.observed
        )
    }
}

impl std::error::Error for RaceError {}

/// The atomic word backing one granule's shadow state. Implemented
/// for 1, 2, 4, and 8 byte widths (`n` in the paper's `8n - 1`).
pub trait ShadowWord: Default + Sync + Send {
    /// Number of shadow bytes per granule.
    const BYTES: usize;
    /// Maximum checked-thread id representable.
    const MAX_THREAD: u8 = (Self::BYTES * 8 - 1) as u8;
    fn load(&self) -> u64;
    /// Compare-exchange; returns the previous value on failure.
    fn compare_exchange(&self, current: u64, new: u64) -> Result<u64, u64>;
    /// Unconditional clear.
    fn clear(&self);
}

macro_rules! impl_shadow_word {
    ($atomic:ty, $raw:ty, $bytes:expr) => {
        impl ShadowWord for $atomic {
            const BYTES: usize = $bytes;
            fn load(&self) -> u64 {
                <$atomic>::load(self, Ordering::Acquire) as u64
            }
            fn compare_exchange(&self, current: u64, new: u64) -> Result<u64, u64> {
                <$atomic>::compare_exchange_weak(
                    self,
                    current as $raw,
                    new as $raw,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .map(|v| v as u64)
                .map_err(|v| v as u64)
            }
            fn clear(&self) {
                <$atomic>::store(self, 0, Ordering::Release);
            }
        }
    };
}

impl_shadow_word!(AtomicU8, u8, 1);
impl_shadow_word!(AtomicU16, u16, 2);
impl_shadow_word!(AtomicU32, u32, 4);
impl_shadow_word!(AtomicU64, u64, 8);

// The widest word's capacity is the workspace-wide thread bound; the
// VM checks its own MAX_THREADS against the same constant.
const _: () = assert!(
    AtomicU64::MAX_THREAD as usize == sharc_checker::MAX_CHECKED_THREADS,
    "the 8n-1 rule must agree with sharc-checker"
);

/// Shadow state for a payload arena, one word per 16-byte granule
/// ([`sharc_checker::GRANULE_BYTES`]).
///
/// The default width (`AtomicU8`, n = 1) matches the paper's
/// evaluation configuration: "setting n = 1 has been sufficient".
#[derive(Debug)]
pub struct Shadow<W: ShadowWord = AtomicU8> {
    words: Vec<W>,
    /// Per-region clear epochs; a clear bumps only the region holding
    /// the cleared granule, and owned-granule caches self-invalidate
    /// entries of regions whose epoch moved.
    epochs: EpochTable,
}

impl<W: ShadowWord> Shadow<W> {
    /// Creates shadow state for `n_granules` granules, with the
    /// default epoch-region geometry
    /// ([`EpochTable::for_granules`]).
    pub fn new(n_granules: usize) -> Self {
        Self::with_epochs(n_granules, EpochTable::for_granules(n_granules))
    }

    /// Creates shadow state with an explicit epoch-region count.
    /// `regions = 1` is the degenerate global-epoch geometry: every
    /// clear invalidates every cache wholesale (the pre-region
    /// behaviour, kept for differential tests and benches).
    pub fn with_epoch_regions(n_granules: usize, regions: usize) -> Self {
        Self::with_epochs(
            n_granules,
            EpochTable::new(regions, n_granules.max(1).div_ceil(regions.max(1))),
        )
    }

    fn with_epochs(n_granules: usize, epochs: EpochTable) -> Self {
        let mut words = Vec::with_capacity(n_granules);
        words.resize_with(n_granules, W::default);
        Shadow { words, epochs }
    }

    /// Number of granules covered.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the shadow covers no granules.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Shadow bytes consumed (the paper's memory overhead source).
    pub fn shadow_bytes(&self) -> usize {
        self.words.len() * W::BYTES
    }

    /// The largest thread id this width supports (`8n - 1`).
    pub fn max_thread(&self) -> u8 {
        W::MAX_THREAD
    }

    /// The current clear-epoch of `granule`'s region (see
    /// [`sharc_checker::cache`] / [`sharc_checker::epoch`]).
    #[inline]
    pub fn epoch_of(&self, granule: usize) -> u64 {
        self.epochs.epoch_of(granule)
    }

    /// The epoch-region table guarding this shadow.
    pub fn epochs(&self) -> &EpochTable {
        &self.epochs
    }

    /// The CAS retry loop over the pure transition function — the
    /// one place the paper's `cmpxchg` protocol is written down.
    #[inline]
    fn check(&self, granule: usize, tid: ThreadId, access: Access) -> Result<bool, RaceError> {
        assert!(
            tid.0 >= 1 && tid.0 <= W::MAX_THREAD,
            "thread id out of range"
        );
        let w = &self.words[granule];
        let mut cur = w.load();
        loop {
            match bitmap::step(cur, tid.0 as u32, access) {
                Transition::Unchanged => return Ok(false),
                Transition::Conflict => {
                    return Err(RaceError {
                        granule,
                        was_write: access.is_write(),
                        observed: cur,
                    })
                }
                Transition::Install(new) => match w.compare_exchange(cur, new) {
                    Ok(_) => return Ok(true),
                    Err(now) => cur = now,
                },
            }
        }
    }

    /// Performs the `chkread` check-and-record for `tid` on `granule`.
    ///
    /// Returns `Ok(newly_set)` — `newly_set` tells the caller to log
    /// the granule for exit-time clearing — or the conflict.
    ///
    /// # Panics
    ///
    /// Panics if `tid` exceeds the width's thread capacity.
    pub fn check_read(&self, granule: usize, tid: ThreadId) -> Result<bool, RaceError> {
        self.check(granule, tid, Access::Read)
    }

    /// Performs the `chkwrite` check-and-record for `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` exceeds the width's thread capacity.
    pub fn check_write(&self, granule: usize, tid: ThreadId) -> Result<bool, RaceError> {
        self.check(granule, tid, Access::Write)
    }

    /// [`Shadow::check_read`] with the owned-granule fast path: if
    /// `cache` proves this thread's read bit is already installed
    /// (and no clear intervened), the atomic check is skipped.
    #[inline]
    pub fn check_read_cached<const WAYS: usize>(
        &self,
        granule: usize,
        tid: ThreadId,
        cache: &mut OwnedCache<WAYS>,
    ) -> Result<bool, RaceError> {
        // The region epoch must be observed before the slow-path
        // check (and before the shadow-word read inside it) so a
        // concurrent clear invalidates whatever we are about to cache.
        let epoch = self.epochs.epoch_of(granule);
        if cache.lookup(epoch, granule, false) {
            return Ok(false);
        }
        self.fill_read(granule, tid, cache, epoch)
    }

    /// The outlined miss path of [`Shadow::check_read_cached`]:
    /// run the full check, then remember the verdict. Outlining
    /// keeps the caller's inlined fast path to a handful of
    /// instructions (epoch load, table probe, compare).
    #[cold]
    #[inline(never)]
    fn fill_read<const WAYS: usize>(
        &self,
        granule: usize,
        tid: ThreadId,
        cache: &mut OwnedCache<WAYS>,
        epoch: u64,
    ) -> Result<bool, RaceError> {
        let newly = self.check_read(granule, tid)?;
        cache.insert(granule, false, epoch);
        Ok(newly)
    }

    /// [`Shadow::check_write`] with the owned-granule fast path: a
    /// cached exclusive owner skips the CAS entirely — the common
    /// case on thread-private dynamic data.
    #[inline]
    pub fn check_write_cached<const WAYS: usize>(
        &self,
        granule: usize,
        tid: ThreadId,
        cache: &mut OwnedCache<WAYS>,
    ) -> Result<bool, RaceError> {
        let epoch = self.epochs.epoch_of(granule);
        if cache.lookup(epoch, granule, true) {
            return Ok(false);
        }
        self.fill_write(granule, tid, cache, epoch)
    }

    /// The outlined miss path of [`Shadow::check_write_cached`].
    #[cold]
    #[inline(never)]
    fn fill_write<const WAYS: usize>(
        &self,
        granule: usize,
        tid: ThreadId,
        cache: &mut OwnedCache<WAYS>,
        epoch: u64,
    ) -> Result<bool, RaceError> {
        let newly = self.check_write(granule, tid)?;
        // After a passing chkwrite the word is exactly
        // WRITER_FLAG | bit(tid): this thread owns the granule.
        cache.insert(granule, true, epoch);
        Ok(newly)
    }

    // ----- ranged checks -----
    //
    // One `chkread`/`chkwrite` per buffer sweep instead of one per
    // granule. The uncached pair is a word-at-a-time sweep over the
    // pure `recorded` predicate (`step::range`), falling back to the
    // full CAS protocol only for granules that need a state
    // transition; the cached pair adds the owned-*run* summary on
    // top, so a repeat sweep over the same buffer is one epoch-sum
    // compare. **The fold contract:** every variant's verdict equals
    // the fold of per-granule verdicts — each granule is judged by
    // the same `step` against its own shadow word, conflicts are
    // reported per granule via `on_conflict`, and newly-installed
    // granules via `on_newly` (for exit-time clearing logs). The
    // return value is the number of conflicting granules.

    /// The shared ranged sweep: skips granules whose snapshot already
    /// records the access, runs the full per-granule check for the
    /// rest.
    #[inline]
    fn check_range(
        &self,
        start: usize,
        len: usize,
        tid: ThreadId,
        access: Access,
        mut on_newly: impl FnMut(usize),
        mut on_conflict: impl FnMut(RaceError),
    ) -> usize {
        let mut conflicts = 0;
        let end = start + len;
        let mut g = start;
        while g < end {
            // Fast classification: one load + one branch-light
            // `recorded` test per already-recorded granule.
            while g < end && range::recorded(self.words[g].load(), tid.0 as u32, access) {
                g += 1;
            }
            if g >= end {
                break;
            }
            // Boundary / first-contact / conflicting granule: the
            // per-granule fallback (full CAS protocol).
            match self.check(g, tid, access) {
                Ok(true) => on_newly(g),
                Ok(false) => {}
                Err(e) => {
                    conflicts += 1;
                    on_conflict(e);
                }
            }
            g += 1;
        }
        conflicts
    }

    /// Ranged `chkread` over granules `start .. start + len`. Calls
    /// `on_newly` for each granule whose read bit was newly
    /// installed, `on_conflict` per conflicting granule; returns the
    /// conflict count. Equivalent to folding [`Shadow::check_read`]
    /// over the range.
    pub fn check_range_read(
        &self,
        start: usize,
        len: usize,
        tid: ThreadId,
        on_newly: impl FnMut(usize),
        on_conflict: impl FnMut(RaceError),
    ) -> usize {
        self.check_range(start, len, tid, Access::Read, on_newly, on_conflict)
    }

    /// Ranged `chkwrite`; see [`Shadow::check_range_read`].
    pub fn check_range_write(
        &self,
        start: usize,
        len: usize,
        tid: ThreadId,
        on_newly: impl FnMut(usize),
        on_conflict: impl FnMut(RaceError),
    ) -> usize {
        self.check_range(start, len, tid, Access::Write, on_newly, on_conflict)
    }

    /// [`Shadow::check_range_read`] with the owned-run fast path: if
    /// `cache` holds a summary proving this thread already swept
    /// exactly this run (and no covered region was cleared since —
    /// the epoch-*sum* covering constraint), the whole sweep is
    /// skipped. The miss path runs per-granule cached checks and, if
    /// the run came back conflict-free, records the summary.
    #[inline]
    pub fn check_range_read_cached<const WAYS: usize>(
        &self,
        start: usize,
        len: usize,
        tid: ThreadId,
        cache: &mut OwnedCache<WAYS>,
        on_newly: impl FnMut(usize),
        on_conflict: impl FnMut(RaceError),
    ) -> usize {
        // The covering stamp must be observed before the sweep, so
        // the run entry can never be newer than the epochs guarding
        // it (the per-region invariant, summed over the run).
        let stamp = self.epochs.epoch_sum_of_range(start, start + len);
        if cache.lookup_run(stamp, start, len, false) {
            return 0;
        }
        self.fill_range(
            start,
            len,
            tid,
            cache,
            stamp,
            Access::Read,
            on_newly,
            on_conflict,
        )
    }

    /// [`Shadow::check_range_write`] with the owned-run fast path;
    /// see [`Shadow::check_range_read_cached`].
    #[inline]
    pub fn check_range_write_cached<const WAYS: usize>(
        &self,
        start: usize,
        len: usize,
        tid: ThreadId,
        cache: &mut OwnedCache<WAYS>,
        on_newly: impl FnMut(usize),
        on_conflict: impl FnMut(RaceError),
    ) -> usize {
        let stamp = self.epochs.epoch_sum_of_range(start, start + len);
        if cache.lookup_run(stamp, start, len, true) {
            return 0;
        }
        self.fill_range(
            start,
            len,
            tid,
            cache,
            stamp,
            Access::Write,
            on_newly,
            on_conflict,
        )
    }

    /// The outlined miss path of the cached ranged checks: per-granule
    /// cached checks (so single-granule entries refill too), then the
    /// run summary — only when **zero** granules conflicted, since a
    /// summary cannot remember a conflicting granule inside it.
    #[cold]
    #[inline(never)]
    #[allow(clippy::too_many_arguments)]
    fn fill_range<const WAYS: usize>(
        &self,
        start: usize,
        len: usize,
        tid: ThreadId,
        cache: &mut OwnedCache<WAYS>,
        stamp: u64,
        access: Access,
        mut on_newly: impl FnMut(usize),
        mut on_conflict: impl FnMut(RaceError),
    ) -> usize {
        let mut conflicts = 0;
        for g in start..start + len {
            let epoch = self.epochs.epoch_of(g);
            if cache.lookup(epoch, g, access.is_write()) {
                continue;
            }
            match self.check(g, tid, access) {
                Ok(newly) => {
                    cache.insert(g, access.is_write(), epoch);
                    if newly {
                        on_newly(g);
                    }
                }
                Err(e) => {
                    conflicts += 1;
                    on_conflict(e);
                }
            }
        }
        if conflicts == 0 {
            cache.insert_run(start, len, access.is_write(), stamp);
        }
        conflicts
    }

    /// Clears a thread's bit on exit ("SharC does not consider it a
    /// race for two threads to access the same location if their
    /// execution does not overlap").
    pub fn clear_thread(&self, granule: usize, tid: ThreadId) {
        let w = &self.words[granule];
        let mut cur = w.load();
        loop {
            let new = bitmap::clear_thread(cur, tid.0 as u32);
            if new == cur {
                break;
            }
            match w.compare_exchange(cur, new) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        self.epochs.bump(granule);
    }

    /// Clears a granule entirely (`free`, or a successful sharing
    /// cast's mode change). Bumps only the epoch of the granule's
    /// region: caches keep entries for every other region.
    pub fn clear(&self, granule: usize) {
        self.words[granule].clear();
        self.epochs.bump(granule);
    }

    /// Clears `len` contiguous granules at once (a whole-block `free`
    /// or sharing cast): a straight word-level sweep of release
    /// stores — no CAS, the clear is unconditional — followed by ONE
    /// [`EpochTable::bump_granule_range`] covering the span, so a
    /// block hand-off invalidates exactly the owned runs it covers,
    /// once per region instead of once per granule.
    pub fn clear_range(&self, start: usize, len: usize) {
        if len == 0 {
            return;
        }
        for g in start..start + len {
            self.words[g].clear();
        }
        self.epochs.bump_granule_range(start, start + len);
    }

    /// [`Shadow::clear_thread`] over `len` contiguous granules: one
    /// bit-subtracting CAS sweep, then ONE ranged epoch bump for the
    /// whole span. The per-word CAS loop is kept (a concurrent access
    /// may race the subtraction), but the O(granules) epoch traffic
    /// collapses to one bump per covered region.
    pub fn clear_thread_range(&self, start: usize, len: usize, tid: ThreadId) {
        if len == 0 {
            return;
        }
        for g in start..start + len {
            let w = &self.words[g];
            let mut cur = w.load();
            loop {
                let new = bitmap::clear_thread(cur, tid.0 as u32);
                if new == cur {
                    break;
                }
                match w.compare_exchange(cur, new) {
                    Ok(_) => break,
                    Err(now) => cur = now,
                }
            }
        }
        self.epochs.bump_granule_range(start, start + len);
    }

    /// Raw bits, for tests and diagnostics.
    pub fn raw(&self, granule: usize) -> u64 {
        self.words[granule].load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_read_write_ok() {
        let s: Shadow = Shadow::new(4);
        let t = ThreadId(1);
        assert_eq!(s.check_read(0, t), Ok(true));
        assert_eq!(s.check_read(0, t), Ok(false));
        assert!(s.check_write(0, t).is_ok());
        assert!(s.check_read(0, t).is_ok());
        assert!(s.check_write(0, t).is_ok());
    }

    #[test]
    fn many_readers_ok() {
        let s: Shadow = Shadow::new(1);
        for t in 1..=7 {
            assert!(s.check_read(0, ThreadId(t)).is_ok(), "thread {t}");
        }
    }

    #[test]
    fn reader_then_other_writer_conflicts() {
        let s: Shadow = Shadow::new(1);
        s.check_read(0, ThreadId(1)).unwrap();
        let e = s.check_write(0, ThreadId(2)).unwrap_err();
        assert!(e.was_write);
        assert_eq!(e.granule, 0);
    }

    #[test]
    fn writer_then_other_reader_conflicts() {
        let s: Shadow = Shadow::new(1);
        s.check_write(0, ThreadId(1)).unwrap();
        assert!(s.check_read(0, ThreadId(2)).is_err());
        assert!(s.check_write(0, ThreadId(2)).is_err());
    }

    #[test]
    fn thread_exit_clears_bits() {
        let s: Shadow = Shadow::new(1);
        s.check_write(0, ThreadId(1)).unwrap();
        s.clear_thread(0, ThreadId(1));
        assert_eq!(s.raw(0), 0, "writer flag cleared with the writer");
        // A different thread may now use the granule freely.
        assert!(s.check_write(0, ThreadId(2)).is_ok());
    }

    #[test]
    fn reader_exit_keeps_other_readers() {
        let s: Shadow = Shadow::new(1);
        s.check_read(0, ThreadId(1)).unwrap();
        s.check_read(0, ThreadId(2)).unwrap();
        s.clear_thread(0, ThreadId(1));
        assert_eq!(s.raw(0), 1 << 2);
    }

    #[test]
    fn clear_resets() {
        let s: Shadow = Shadow::new(1);
        s.check_write(0, ThreadId(3)).unwrap();
        s.clear(0);
        assert_eq!(s.raw(0), 0);
    }

    #[test]
    fn width_capacities() {
        assert_eq!(Shadow::<AtomicU8>::new(1).max_thread(), 7);
        assert_eq!(Shadow::<AtomicU16>::new(1).max_thread(), 15);
        assert_eq!(Shadow::<AtomicU32>::new(1).max_thread(), 31);
        assert_eq!(Shadow::<AtomicU64>::new(1).max_thread(), 63);
    }

    #[test]
    fn wider_words_support_more_threads() {
        let s: Shadow<AtomicU16> = Shadow::new(1);
        for t in 1..=15 {
            assert!(s.check_read(0, ThreadId(t)).is_ok());
        }
        assert_eq!(s.shadow_bytes(), 2);
    }

    #[test]
    #[should_panic(expected = "thread id out of range")]
    fn thread_id_zero_rejected() {
        let s: Shadow = Shadow::new(1);
        let _ = s.check_read(0, ThreadId(0));
    }

    #[test]
    fn concurrent_readers_never_conflict() {
        let s: Arc<Shadow> = Arc::new(Shadow::new(64));
        let mut handles = Vec::new();
        for t in 1..=7u8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for g in 0..64 {
                    s.check_read(g, ThreadId(t)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for g in 0..64 {
            assert_eq!(s.raw(g) & 1, 0, "no writer flag");
        }
    }

    #[test]
    fn concurrent_disjoint_writers_never_conflict() {
        let s: Arc<Shadow> = Arc::new(Shadow::new(70));
        let mut handles = Vec::new();
        for t in 1..=7u8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for rep in 0..100 {
                    let g = (t as usize - 1) * 10 + (rep % 10);
                    s.check_write(g, ThreadId(t)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_same_granule_writers_conflict() {
        let s: Arc<Shadow> = Arc::new(Shadow::new(1));
        let mut handles = Vec::new();
        for t in 1..=4u8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut conflicts = 0;
                for _ in 0..100 {
                    if s.check_write(0, ThreadId(t)).is_err() {
                        conflicts += 1;
                    }
                }
                conflicts
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "competing writers must conflict");
    }

    // ----- owned-granule fast path -----

    #[test]
    fn cached_write_skips_but_agrees() {
        let s: Shadow = Shadow::new(4);
        let mut cache: OwnedCache = OwnedCache::new();
        let t = ThreadId(1);
        assert_eq!(s.check_write_cached(0, t, &mut cache), Ok(true));
        for _ in 0..10 {
            assert_eq!(s.check_write_cached(0, t, &mut cache), Ok(false));
            assert_eq!(s.check_read_cached(0, t, &mut cache), Ok(false));
        }
        assert_eq!(cache.misses, 1, "one fill, then 20 fast-path hits");
        // The shadow word is exactly what the uncached path produces.
        assert_eq!(s.raw(0), 1 | (1 << 1));
    }

    #[test]
    fn cache_never_hides_a_conflict_from_the_other_thread() {
        let s: Shadow = Shadow::new(1);
        let mut c1: OwnedCache = OwnedCache::new();
        let t1 = ThreadId(1);
        s.check_write_cached(0, t1, &mut c1).unwrap();
        // Thread 2 runs the full check and sees the conflict.
        let mut c2: OwnedCache = OwnedCache::new();
        assert!(s.check_write_cached(0, ThreadId(2), &mut c2).is_err());
        // ...and thread 1's cache still answers correctly (owner
        // stable: the conflicting access did not install).
        assert_eq!(s.check_write_cached(0, t1, &mut c1), Ok(false));
    }

    #[test]
    fn clear_invalidates_cached_ownership() {
        let s: Shadow = Shadow::new(1);
        let mut c1: OwnedCache = OwnedCache::new();
        s.check_write_cached(0, ThreadId(1), &mut c1).unwrap();
        // free / sharing cast: the granule resets and the epoch moves.
        s.clear(0);
        let mut c2: OwnedCache = OwnedCache::new();
        s.check_write_cached(0, ThreadId(2), &mut c2).unwrap();
        // Thread 1's next cached access must NOT fast-path: the new
        // owner is thread 2 and the access is a real conflict.
        assert!(s.check_write_cached(0, ThreadId(1), &mut c1).is_err());
    }

    #[test]
    fn clear_leaves_other_regions_cached() {
        // 128 granules / 64 regions: granules 0 and 64 are guarded by
        // different epochs, so clearing 0 must not cost 64 a refill.
        let s: Shadow = Shadow::new(128);
        let mut c: OwnedCache = OwnedCache::new();
        s.check_write_cached(64, ThreadId(1), &mut c).unwrap();
        assert_eq!(c.misses, 1);
        s.clear(0);
        assert_eq!(
            s.check_write_cached(64, ThreadId(1), &mut c),
            Ok(false),
            "entry in an unaffected region still answers"
        );
        assert_eq!(c.misses, 1, "no refill after the distant clear");
        assert_eq!(c.flushes, 0, "nothing was discarded");
        // The degenerate R = 1 geometry still flushes everything.
        let s1: Shadow = Shadow::with_epoch_regions(128, 1);
        let mut c1: OwnedCache = OwnedCache::new();
        s1.check_write_cached(64, ThreadId(1), &mut c1).unwrap();
        s1.clear(0);
        assert_eq!(s1.check_write_cached(64, ThreadId(1), &mut c1), Ok(false));
        assert_eq!(c1.misses, 2, "global epoch: the clear cost a refill");
    }

    #[test]
    fn clear_thread_invalidates_via_epoch() {
        let s: Shadow = Shadow::new(1);
        let mut c1: OwnedCache = OwnedCache::new();
        s.check_read_cached(0, ThreadId(1), &mut c1).unwrap();
        s.clear_thread(0, ThreadId(1));
        // After the exit-clear the cached read entry is discarded and
        // the slow path re-installs.
        assert_eq!(s.check_read_cached(0, ThreadId(1), &mut c1), Ok(true));
    }

    // ----- ranged checks -----

    /// Folds the per-granule check over a range, mirroring the ranged
    /// API's observable outputs: (newly list, conflict granules).
    fn fold_check(
        s: &Shadow,
        start: usize,
        len: usize,
        tid: ThreadId,
        write: bool,
    ) -> (Vec<usize>, Vec<usize>) {
        let (mut newly, mut conf) = (Vec::new(), Vec::new());
        for g in start..start + len {
            let r = if write {
                s.check_write(g, tid)
            } else {
                s.check_read(g, tid)
            };
            match r {
                Ok(true) => newly.push(g),
                Ok(false) => {}
                Err(e) => conf.push(e.granule),
            }
        }
        (newly, conf)
    }

    #[test]
    fn range_verdict_equals_the_per_granule_fold() {
        // Two identically prepared shadows: granules 0..4 owned by
        // tid 1, granule 4 owned by tid 2, 5..8 untouched.
        let prep = || {
            let s: Shadow = Shadow::new(8);
            for g in 0..4 {
                s.check_write(g, ThreadId(1)).unwrap();
            }
            s.check_write(4, ThreadId(2)).unwrap();
            s
        };
        let (a, b) = (prep(), prep());
        let (mut newly, mut conf) = (Vec::new(), Vec::new());
        let n = a.check_range_write(
            0,
            8,
            ThreadId(1),
            |g| newly.push(g),
            |e| conf.push(e.granule),
        );
        let (fnewly, fconf) = fold_check(&b, 0, 8, ThreadId(1), true);
        assert_eq!(newly, fnewly, "newly-installed granules agree");
        assert_eq!(conf, fconf, "conflicting granules agree");
        assert_eq!(n, conf.len());
        assert_eq!(conf, vec![4], "only tid 2's granule conflicts");
        // And the shadow words are bit-identical afterwards.
        for g in 0..8 {
            assert_eq!(a.raw(g), b.raw(g), "granule {g}");
        }
    }

    #[test]
    fn cached_range_repeat_sweep_is_one_stamp_compare() {
        let s: Shadow = Shadow::new(64);
        let mut c: OwnedCache = OwnedCache::new();
        let t = ThreadId(1);
        let mut newly = 0;
        let n = s.check_range_write_cached(0, 64, t, &mut c, |_| newly += 1, |_| {});
        assert_eq!((n, newly), (0, 64), "first sweep installs everything");
        let misses_after_fill = c.misses;
        for _ in 0..5 {
            let n = s.check_range_write_cached(0, 64, t, &mut c, |_| panic!(), |_| panic!());
            assert_eq!(n, 0);
        }
        assert_eq!(c.misses, misses_after_fill, "repeat sweeps are run hits");
        // Reads ride the writable run too.
        let n = s.check_range_read_cached(0, 64, t, &mut c, |_| panic!(), |_| panic!());
        assert_eq!(n, 0);
    }

    #[test]
    fn clear_inside_run_kills_it_clear_outside_does_not() {
        // 128 granules / 64 regions of 2: the run 0..8 covers regions
        // 0..4; granule 100 lives far away.
        let s: Shadow = Shadow::new(128);
        let mut c: OwnedCache = OwnedCache::new();
        let t = ThreadId(1);
        s.check_range_write_cached(0, 8, t, &mut c, |_| {}, |_| {});
        let baseline = c.misses;
        s.clear(100); // outside the run's regions
        s.check_range_write_cached(0, 8, t, &mut c, |_| {}, |_| {});
        assert_eq!(c.misses, baseline, "distant clear leaves the run live");
        s.clear(3); // inside
        let n = s.check_range_write_cached(0, 8, t, &mut c, |_| {}, |_| {});
        assert_eq!(n, 0);
        assert!(c.misses > baseline, "covered bump forced a re-sweep");
        // The re-swept run answers again.
        let m = c.misses;
        s.check_range_write_cached(0, 8, t, &mut c, |_| panic!(), |_| panic!());
        assert_eq!(c.misses, m);
    }

    #[test]
    fn cached_range_never_hides_a_conflict() {
        let s: Shadow = Shadow::new(8);
        let mut c1: OwnedCache = OwnedCache::new();
        let mut c2: OwnedCache = OwnedCache::new();
        s.check_range_write_cached(0, 8, ThreadId(1), &mut c1, |_| {}, |_| {});
        // Thread 2 sweeps the same buffer: every granule conflicts,
        // and no run summary may be recorded for it.
        let mut conf = Vec::new();
        let n = s.check_range_write_cached(
            0,
            8,
            ThreadId(2),
            &mut c2,
            |_| {},
            |e| conf.push(e.granule),
        );
        assert_eq!(n, 8);
        assert_eq!(conf, (0..8).collect::<Vec<_>>());
        let n = s.check_range_write_cached(0, 8, ThreadId(2), &mut c2, |_| {}, |_| {});
        assert_eq!(n, 8, "conflicting sweep was not summarised");
        // Thread 1's run is still valid (conflicts never install).
        s.check_range_write_cached(0, 8, ThreadId(1), &mut c1, |_| panic!(), |_| panic!());
    }
}
