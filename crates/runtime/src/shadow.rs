//! Shadow memory implementing the paper's reader/writer-set encoding
//! (§4.2.1), for real threads with atomic updates.
//!
//! For every 16 bytes of payload memory SharC keeps `n` extra bytes.
//! The encoding:
//!
//! * bit 0 set — a *single* thread is reading **and writing** the
//!   granule (the thread whose bit is also set);
//! * bit `k` (k ≥ 1) set — thread `k` is reading the granule, and
//!   also writing it if bit 0 is set.
//!
//! With `n` shadow bytes this supports `8n - 1` threads. Updates use
//! compare-exchange loops, the portable equivalent of the paper's
//! `cmpxchg` on x86.

use std::sync::atomic::{AtomicU16, AtomicU32, AtomicU64, AtomicU8, Ordering};

/// A checked-thread identifier: `1 ..= 8n - 1` for a width of `n`
/// bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ThreadId(pub u8);

impl ThreadId {
    /// The bit this thread occupies in a shadow word.
    fn bit(self) -> u64 {
        1u64 << self.0
    }
}

/// A race detected by a shadow check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RaceError {
    /// The granule index where the conflict occurred.
    pub granule: usize,
    /// True if the failing access was a write.
    pub was_write: bool,
    /// The raw shadow bits observed (for diagnosis).
    pub observed: u64,
}

impl std::fmt::Display for RaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} conflict at granule {} (shadow bits {:#b})",
            if self.was_write { "write" } else { "read" },
            self.granule,
            self.observed
        )
    }
}

impl std::error::Error for RaceError {}

/// The atomic word backing one granule's shadow state. Implemented
/// for 1, 2, 4, and 8 byte widths (`n` in the paper's `8n - 1`).
pub trait ShadowWord: Default + Sync + Send {
    /// Number of shadow bytes per granule.
    const BYTES: usize;
    /// Maximum checked-thread id representable.
    const MAX_THREAD: u8 = (Self::BYTES * 8 - 1) as u8;
    fn load(&self) -> u64;
    /// Compare-exchange; returns the previous value on failure.
    fn compare_exchange(&self, current: u64, new: u64) -> Result<u64, u64>;
    /// Unconditional clear.
    fn clear(&self);
    /// Atomically removes the given bits.
    fn fetch_and_not(&self, bits: u64) -> u64;
}

macro_rules! impl_shadow_word {
    ($atomic:ty, $raw:ty, $bytes:expr) => {
        impl ShadowWord for $atomic {
            const BYTES: usize = $bytes;
            fn load(&self) -> u64 {
                <$atomic>::load(self, Ordering::Acquire) as u64
            }
            fn compare_exchange(&self, current: u64, new: u64) -> Result<u64, u64> {
                <$atomic>::compare_exchange_weak(
                    self,
                    current as $raw,
                    new as $raw,
                    Ordering::AcqRel,
                    Ordering::Acquire,
                )
                .map(|v| v as u64)
                .map_err(|v| v as u64)
            }
            fn clear(&self) {
                <$atomic>::store(self, 0, Ordering::Release);
            }
            fn fetch_and_not(&self, bits: u64) -> u64 {
                <$atomic>::fetch_and(self, !(bits as $raw), Ordering::AcqRel) as u64
            }
        }
    };
}

impl_shadow_word!(AtomicU8, u8, 1);
impl_shadow_word!(AtomicU16, u16, 2);
impl_shadow_word!(AtomicU32, u32, 4);
impl_shadow_word!(AtomicU64, u64, 8);

/// The single-writer flag (bit 0 of every shadow word).
const WRITER_FLAG: u64 = 1;

/// Shadow state for a payload arena, one word per 16-byte granule.
///
/// The default width (`AtomicU8`, n = 1) matches the paper's
/// evaluation configuration: "setting n = 1 has been sufficient".
#[derive(Debug)]
pub struct Shadow<W: ShadowWord = AtomicU8> {
    words: Vec<W>,
}

impl<W: ShadowWord> Shadow<W> {
    /// Creates shadow state for `n_granules` granules.
    pub fn new(n_granules: usize) -> Self {
        let mut words = Vec::with_capacity(n_granules);
        words.resize_with(n_granules, W::default);
        Shadow { words }
    }

    /// Number of granules covered.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if the shadow covers no granules.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Shadow bytes consumed (the paper's memory overhead source).
    pub fn shadow_bytes(&self) -> usize {
        self.words.len() * W::BYTES
    }

    /// The largest thread id this width supports (`8n - 1`).
    pub fn max_thread(&self) -> u8 {
        W::MAX_THREAD
    }

    /// Performs the `chkread` check-and-record for `tid` on `granule`.
    ///
    /// Returns `Ok(newly_set)` — `newly_set` tells the caller to log
    /// the granule for exit-time clearing — or the conflict.
    ///
    /// # Panics
    ///
    /// Panics if `tid` exceeds the width's thread capacity.
    pub fn check_read(&self, granule: usize, tid: ThreadId) -> Result<bool, RaceError> {
        assert!(tid.0 >= 1 && tid.0 <= W::MAX_THREAD, "thread id out of range");
        let w = &self.words[granule];
        let bit = tid.bit();
        let mut cur = w.load();
        loop {
            // A writer exists iff bit 0 is set; the writer is the
            // thread whose bit accompanies it. Reading is a conflict
            // unless that thread is us.
            if cur & WRITER_FLAG != 0 && cur & !WRITER_FLAG & !bit != 0 {
                return Err(RaceError {
                    granule,
                    was_write: false,
                    observed: cur,
                });
            }
            if cur & bit != 0 {
                return Ok(false);
            }
            match w.compare_exchange(cur, cur | bit) {
                Ok(_) => return Ok(true),
                Err(now) => cur = now,
            }
        }
    }

    /// Performs the `chkwrite` check-and-record for `tid`.
    ///
    /// # Panics
    ///
    /// Panics if `tid` exceeds the width's thread capacity.
    pub fn check_write(&self, granule: usize, tid: ThreadId) -> Result<bool, RaceError> {
        assert!(tid.0 >= 1 && tid.0 <= W::MAX_THREAD, "thread id out of range");
        let w = &self.words[granule];
        let bit = tid.bit();
        let mut cur = w.load();
        loop {
            // Writing requires no *other* readers or writers at all.
            if cur & !WRITER_FLAG & !bit != 0 {
                return Err(RaceError {
                    granule,
                    was_write: true,
                    observed: cur,
                });
            }
            let new = WRITER_FLAG | bit;
            if cur == new {
                return Ok(false);
            }
            match w.compare_exchange(cur, new) {
                Ok(_) => return Ok(true),
                Err(now) => cur = now,
            }
        }
    }

    /// Clears a thread's bit on exit ("SharC does not consider it a
    /// race for two threads to access the same location if their
    /// execution does not overlap").
    pub fn clear_thread(&self, granule: usize, tid: ThreadId) {
        let w = &self.words[granule];
        let prev = w.fetch_and_not(tid.bit());
        // If this thread was the single reader+writer, drop the
        // writer flag too (no thread bits remain).
        if prev & !WRITER_FLAG == tid.bit() {
            w.fetch_and_not(WRITER_FLAG);
        }
    }

    /// Clears a granule entirely (`free`, or a successful sharing
    /// cast's mode change).
    pub fn clear(&self, granule: usize) {
        self.words[granule].clear();
    }

    /// Raw bits, for tests and diagnostics.
    pub fn raw(&self, granule: usize) -> u64 {
        self.words[granule].load()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_read_write_ok() {
        let s: Shadow = Shadow::new(4);
        let t = ThreadId(1);
        assert_eq!(s.check_read(0, t), Ok(true));
        assert_eq!(s.check_read(0, t), Ok(false));
        assert!(s.check_write(0, t).is_ok());
        assert!(s.check_read(0, t).is_ok());
        assert!(s.check_write(0, t).is_ok());
    }

    #[test]
    fn many_readers_ok() {
        let s: Shadow = Shadow::new(1);
        for t in 1..=7 {
            assert!(s.check_read(0, ThreadId(t)).is_ok(), "thread {t}");
        }
    }

    #[test]
    fn reader_then_other_writer_conflicts() {
        let s: Shadow = Shadow::new(1);
        s.check_read(0, ThreadId(1)).unwrap();
        let e = s.check_write(0, ThreadId(2)).unwrap_err();
        assert!(e.was_write);
        assert_eq!(e.granule, 0);
    }

    #[test]
    fn writer_then_other_reader_conflicts() {
        let s: Shadow = Shadow::new(1);
        s.check_write(0, ThreadId(1)).unwrap();
        assert!(s.check_read(0, ThreadId(2)).is_err());
        assert!(s.check_write(0, ThreadId(2)).is_err());
    }

    #[test]
    fn thread_exit_clears_bits() {
        let s: Shadow = Shadow::new(1);
        s.check_write(0, ThreadId(1)).unwrap();
        s.clear_thread(0, ThreadId(1));
        assert_eq!(s.raw(0), 0, "writer flag cleared with the writer");
        // A different thread may now use the granule freely.
        assert!(s.check_write(0, ThreadId(2)).is_ok());
    }

    #[test]
    fn reader_exit_keeps_other_readers() {
        let s: Shadow = Shadow::new(1);
        s.check_read(0, ThreadId(1)).unwrap();
        s.check_read(0, ThreadId(2)).unwrap();
        s.clear_thread(0, ThreadId(1));
        assert_eq!(s.raw(0), 1 << 2);
    }

    #[test]
    fn clear_resets() {
        let s: Shadow = Shadow::new(1);
        s.check_write(0, ThreadId(3)).unwrap();
        s.clear(0);
        assert_eq!(s.raw(0), 0);
    }

    #[test]
    fn width_capacities() {
        assert_eq!(Shadow::<AtomicU8>::new(1).max_thread(), 7);
        assert_eq!(Shadow::<AtomicU16>::new(1).max_thread(), 15);
        assert_eq!(Shadow::<AtomicU32>::new(1).max_thread(), 31);
        assert_eq!(Shadow::<AtomicU64>::new(1).max_thread(), 63);
    }

    #[test]
    fn wider_words_support_more_threads() {
        let s: Shadow<AtomicU16> = Shadow::new(1);
        for t in 1..=15 {
            assert!(s.check_read(0, ThreadId(t)).is_ok());
        }
        assert_eq!(s.shadow_bytes(), 2);
    }

    #[test]
    #[should_panic(expected = "thread id out of range")]
    fn thread_id_zero_rejected() {
        let s: Shadow = Shadow::new(1);
        let _ = s.check_read(0, ThreadId(0));
    }

    #[test]
    fn concurrent_readers_never_conflict() {
        let s: Arc<Shadow> = Arc::new(Shadow::new(64));
        let mut handles = Vec::new();
        for t in 1..=7u8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for g in 0..64 {
                    s.check_read(g, ThreadId(t)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        for g in 0..64 {
            assert_eq!(s.raw(g) & 1, 0, "no writer flag");
        }
    }

    #[test]
    fn concurrent_disjoint_writers_never_conflict() {
        let s: Arc<Shadow> = Arc::new(Shadow::new(70));
        let mut handles = Vec::new();
        for t in 1..=7u8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for rep in 0..100 {
                    let g = (t as usize - 1) * 10 + (rep % 10);
                    s.check_write(g, ThreadId(t)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_same_granule_writers_conflict() {
        let s: Arc<Shadow> = Arc::new(Shadow::new(1));
        let mut handles = Vec::new();
        for t in 1..=4u8 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                let mut conflicts = 0;
                for _ in 0..100 {
                    if s.check_write(0, ThreadId(t)).is_err() {
                        conflicts += 1;
                    }
                }
                conflicts
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(total > 0, "competing writers must conflict");
    }
}
