//! # sharc-runtime
//!
//! The SharC runtime substrate for *real* threads (paper §4.2–4.4):
//! shadow memory with the exact n-byte reader/writer bitmap encoding
//! updated by compare-exchange, per-thread held-lock logs, the
//! sharing-cast (`oneref`) protocol, and two reference-counting
//! schemes — naive eager atomic counting and the adapted
//! Levanoni–Petrank on-the-fly algorithm the paper uses to make
//! counting affordable.
//!
//! The [`arena::AccessPolicy`] abstraction lets a workload be
//! compiled twice — baseline and checked — which is how the Table 1
//! overhead numbers are regenerated.
//!
//! ## Example
//!
//! ```
//! use sharc_runtime::arena::{AccessPolicy, Arena, Checked, Unchecked};
//! use sharc_runtime::locks::ThreadCtx;
//! use sharc_runtime::shadow::ThreadId;
//!
//! fn fill<P: AccessPolicy>(a: &Arena, ctx: &mut ThreadCtx) -> u64 {
//!     for i in 0..64 {
//!         P::write(a, ctx, i, i as u64);
//!     }
//!     (0..64).map(|i| P::read(a, ctx, i)).sum()
//! }
//!
//! let arena = Arena::new(64);
//! let mut ctx = ThreadCtx::new(ThreadId(1));
//! assert_eq!(fill::<Unchecked>(&arena, &mut ctx), fill::<Checked>(&arena, &mut ctx));
//! assert_eq!(ctx.conflicts, 0);
//! ```

pub mod arena;
pub mod events;
pub mod locks;
pub mod rc;
pub mod scalable;
pub mod scast;
pub mod shadow;
pub mod sharded;
pub mod wide;

pub use arena::{AccessPolicy, Arena, CachedChecked, Checked, Unchecked, GRANULE_WORDS};
pub use events::{recording_tid, EventLog, EventSink, StreamStats, StreamingSink};
pub use locks::{LockId, LockNotHeld, LockRegistry, ThreadCtx};
pub use rc::{LpRc, NaiveRc, ObjId, RcScheme};
pub use scalable::{ScalableShadow, WideThreadId};
pub use scast::{sharing_cast, ScastError};
pub use shadow::{RaceError, Shadow, ShadowWord, ThreadId};
pub use sharded::{ShardedShadow, MAX_WORDS_PER_GRANULE};
pub use wide::{
    WideArena, WideChecked, WideLockNotHeld, WideLockRegistry, WidePolicy, WideThreadCtx,
    WideUnchecked,
};
