//! The sharded hybrid shadow: exact reader/writer tracking *beyond*
//! 63 threads, for real threads with atomic updates.
//!
//! Each granule is backed by `shards + 1` atomic words laid out by a
//! [`ShadowGeometry`]: one full bitmap word per 63-thread block plus
//! one adaptive-encoded overflow word for ids past the exact range.
//! The state machine itself is pure and lives in `sharc-checker`
//! ([`sharc_checker::step::sharded`]); this module is the concurrent
//! wrapper around it:
//!
//! 1. **snapshot** every word of the granule (`SeqCst` loads),
//! 2. run the pure `step` on the snapshot,
//! 3. **CAS** the single word the step wants to change (`SeqCst`),
//!    retrying the whole step if the word moved, then
//! 4. **revalidate**: re-read the granule and re-run the step. If the
//!    re-run conflicts, a racing access installed foreign state in a
//!    *different* word between our snapshot and our CAS — report the
//!    conflict.
//!
//! Step 4 is where the multi-word encoding genuinely differs from
//! the single-word one. With one word, CAS makes check-and-install
//! atomic, so "conflicts never install" holds even under races.
//! With several words, two racing accesses in different shards can
//! both pass step 2 and both install; no single-word CAS can see the
//! other. The `SeqCst` total order saves the verdict (a
//! store-then-load Dekker pattern): whichever install is later in
//! that order observes the earlier one during its revalidation and
//! reports the conflict. So under races the contract weakens from
//! "conflicts never install" to "**a racing conflict is always
//! reported by at least one participant, and its installed state
//! keeps excluding third parties**" — the conservative direction.
//! When accesses are serialized (the differential tests, the VM),
//! revalidation reads back exactly what was installed and the
//! verdicts coincide with the pure step, i.e. with the bitmap
//! oracle.
//!
//! The owned-granule epoch cache rides on top unchanged (see
//! [`sharc_checker::cache`]): a passing write still implies every
//! other word was empty, conflicts still install nothing *into the
//! winner's ownership*, and every clear still bumps an epoch — now
//! the per-region epoch of the cleared granule ([`EpochTable`]), so
//! caches keep entries for unrelated regions alive across a `free`.
//! [`ShardedShadow::with_epoch_regions`] with `regions = 1` restores
//! the old whole-cache-flush behaviour.

use crate::shadow::RaceError;
use sharc_checker::step::{
    range,
    sharded::{self, ShardStep},
    Access,
};
use sharc_checker::{EpochTable, OwnedCache, ShadowGeometry};
use std::sync::atomic::{AtomicU64, Ordering};

pub use crate::scalable::WideThreadId;

/// Upper bound on words per granule the stack-allocated snapshot
/// supports: 15 shards + overflow = exact identities for 945
/// threads. Raise it if you genuinely run wider.
pub const MAX_WORDS_PER_GRANULE: usize = 16;

/// Shadow state with the sharded hybrid encoding (bitmap shards +
/// adaptive overflow).
#[derive(Debug)]
pub struct ShardedShadow {
    /// Flat store: granule `g`'s words at `g * stride ..`.
    words: Vec<AtomicU64>,
    geom: ShadowGeometry,
    /// Per-region clear epochs; a clear bumps only the region of the
    /// cleared granule, and owned-granule caches self-invalidate
    /// entries of regions whose epoch moved.
    epochs: EpochTable,
}

impl ShardedShadow {
    /// Creates state for `n_granules` granules under the default
    /// one-shard geometry (exact to 63 threads, adaptive overflow
    /// beyond).
    pub fn new(n_granules: usize) -> Self {
        Self::with_geometry(n_granules, ShadowGeometry::default())
    }

    /// Creates state for `n_granules` granules under `geom` — e.g.
    /// `ShadowGeometry::for_threads(256)` for exact identities at
    /// 256 native threads.
    ///
    /// # Panics
    ///
    /// Panics if the geometry needs more than
    /// [`MAX_WORDS_PER_GRANULE`] words per granule.
    pub fn with_geometry(n_granules: usize, geom: ShadowGeometry) -> Self {
        // Wider geometries pay more per refill, so the region table
        // scales with the geometry (see `EpochTable::for_geometry`).
        Self::with_epochs(n_granules, geom, EpochTable::for_geometry(geom, n_granules))
    }

    /// [`ShardedShadow::with_geometry`] with an explicit epoch-region
    /// count. `regions = 1` is the degenerate global-epoch geometry
    /// (every clear flushes every cache), kept for differential tests
    /// and benches.
    pub fn with_epoch_regions(n_granules: usize, geom: ShadowGeometry, regions: usize) -> Self {
        Self::with_epochs(
            n_granules,
            geom,
            EpochTable::new(regions, n_granules.max(1).div_ceil(regions.max(1))),
        )
    }

    fn with_epochs(n_granules: usize, geom: ShadowGeometry, epochs: EpochTable) -> Self {
        assert!(
            geom.words_per_granule() <= MAX_WORDS_PER_GRANULE,
            "geometry too wide: {} words per granule (max {})",
            geom.words_per_granule(),
            MAX_WORDS_PER_GRANULE
        );
        let mut words = Vec::with_capacity(n_granules * geom.words_per_granule());
        words.resize_with(n_granules * geom.words_per_granule(), AtomicU64::default);
        ShardedShadow {
            words,
            geom,
            epochs,
        }
    }

    /// The shard layout.
    pub fn geometry(&self) -> ShadowGeometry {
        self.geom
    }

    /// Number of granules covered.
    pub fn len(&self) -> usize {
        self.words.len() / self.geom.words_per_granule()
    }

    /// True if no granules are covered.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Shadow bytes consumed: `8 × (shards + 1)` per granule — the
    /// price of exactness past 63 threads (the adaptive encoding
    /// stays at 8 regardless).
    pub fn shadow_bytes(&self) -> usize {
        self.words.len() * 8
    }

    /// The current clear-epoch of `granule`'s region (see
    /// [`sharc_checker::cache`] / [`sharc_checker::epoch`]).
    #[inline]
    pub fn epoch_of(&self, granule: usize) -> u64 {
        self.epochs.epoch_of(granule)
    }

    /// The epoch-region table guarding this shadow.
    pub fn epochs(&self) -> &EpochTable {
        &self.epochs
    }

    #[inline]
    fn base(&self, granule: usize) -> usize {
        granule * self.geom.words_per_granule()
    }

    /// Loads a `SeqCst` snapshot of the granule's words into `buf`,
    /// returning the populated prefix.
    #[inline]
    fn snapshot<'b>(&self, granule: usize, buf: &'b mut [u64; MAX_WORDS_PER_GRANULE]) -> &'b [u64] {
        let stride = self.geom.words_per_granule();
        let base = self.base(granule);
        for (i, slot) in buf.iter_mut().enumerate().take(stride) {
            *slot = self.words[base + i].load(Ordering::SeqCst);
        }
        &buf[..stride]
    }

    /// The snapshot → step → CAS → revalidate protocol (module docs).
    fn check(&self, granule: usize, tid: WideThreadId, access: Access) -> Result<bool, RaceError> {
        assert!(
            tid.0 >= 1 && (tid.0 as u64) <= sharc_checker::step::adaptive::TID_MASK,
            "thread id out of range"
        );
        let base = self.base(granule);
        let mut buf = [0u64; MAX_WORDS_PER_GRANULE];
        loop {
            let snap = self.snapshot(granule, &mut buf);
            match sharded::step(snap, self.geom, tid.0, access) {
                ShardStep::Unchanged => return Ok(false),
                ShardStep::Conflict => {
                    return Err(RaceError {
                        granule,
                        was_write: access.is_write(),
                        observed: self.observed(snap, tid.0),
                    })
                }
                ShardStep::Install { index, word } => {
                    let expected = snap[index];
                    if self.words[base + index]
                        .compare_exchange(expected, word, Ordering::SeqCst, Ordering::SeqCst)
                        .is_err()
                    {
                        // Our own word moved: somebody raced us in the
                        // same shard. Retry with a fresh snapshot.
                        continue;
                    }
                    // Revalidate across the *other* words: a racer in
                    // a different shard may have installed between our
                    // snapshot and our CAS. SeqCst totally orders the
                    // two installs; the later one sees the earlier.
                    let reread = self.snapshot(granule, &mut buf);
                    if sharded::step(reread, self.geom, tid.0, access).is_conflict() {
                        return Err(RaceError {
                            granule,
                            was_write: access.is_write(),
                            observed: self.observed(reread, tid.0),
                        });
                    }
                    return Ok(true);
                }
            }
        }
    }

    /// The most diagnostic single word for a conflict report: the
    /// acting thread's own word if it holds foreign state, else the
    /// first non-empty foreign word.
    fn observed(&self, snap: &[u64], tid: u32) -> u64 {
        let own = match self.geom.shard_of(tid) {
            Some(s) => s,
            None => self.geom.overflow_index(),
        };
        snap.iter()
            .enumerate()
            .find_map(|(i, &w)| (i != own && w != 0).then_some(w))
            .unwrap_or(snap[own])
    }

    /// The `chkread` check-and-record. Returns `Ok(newly_set)` or
    /// the conflict.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is zero or exceeds 2³⁰ − 1.
    pub fn check_read(&self, granule: usize, tid: WideThreadId) -> Result<bool, RaceError> {
        self.check(granule, tid, Access::Read)
    }

    /// The `chkwrite` check-and-record.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is zero or exceeds 2³⁰ − 1.
    pub fn check_write(&self, granule: usize, tid: WideThreadId) -> Result<bool, RaceError> {
        self.check(granule, tid, Access::Write)
    }

    /// [`ShardedShadow::check_read`] with the owned-granule fast
    /// path (see [`sharc_checker::cache`] for the invariants, which
    /// carry over to the sharded words verbatim).
    #[inline]
    pub fn check_read_cached<const WAYS: usize>(
        &self,
        granule: usize,
        tid: WideThreadId,
        cache: &mut OwnedCache<WAYS>,
    ) -> Result<bool, RaceError> {
        // The region epoch must be observed before the slow-path
        // check (and its shadow-word snapshot) so a concurrent clear
        // invalidates whatever we are about to cache.
        let epoch = self.epochs.epoch_of(granule);
        if cache.lookup(epoch, granule, false) {
            return Ok(false);
        }
        self.fill_read(granule, tid, cache, epoch)
    }

    #[cold]
    #[inline(never)]
    fn fill_read<const WAYS: usize>(
        &self,
        granule: usize,
        tid: WideThreadId,
        cache: &mut OwnedCache<WAYS>,
        epoch: u64,
    ) -> Result<bool, RaceError> {
        let newly = self.check_read(granule, tid)?;
        cache.insert(granule, false, epoch);
        Ok(newly)
    }

    /// [`ShardedShadow::check_write`] with the owned-granule fast
    /// path.
    #[inline]
    pub fn check_write_cached<const WAYS: usize>(
        &self,
        granule: usize,
        tid: WideThreadId,
        cache: &mut OwnedCache<WAYS>,
    ) -> Result<bool, RaceError> {
        let epoch = self.epochs.epoch_of(granule);
        if cache.lookup(epoch, granule, true) {
            return Ok(false);
        }
        self.fill_write(granule, tid, cache, epoch)
    }

    #[cold]
    #[inline(never)]
    fn fill_write<const WAYS: usize>(
        &self,
        granule: usize,
        tid: WideThreadId,
        cache: &mut OwnedCache<WAYS>,
        epoch: u64,
    ) -> Result<bool, RaceError> {
        let newly = self.check_write(granule, tid)?;
        // After a passing chkwrite every other word is empty and our
        // shard word is WRITER_FLAG | bit: this thread owns the
        // granule across all words.
        cache.insert(granule, true, epoch);
        Ok(newly)
    }

    /// One `chkread`/`chkwrite` over a contiguous run of granules
    /// (the ranged check, same contract as
    /// [`crate::Shadow::check_range_read`]): the verdict equals the
    /// fold of per-granule checks, but granules whose snapshot is
    /// already fully recorded for `tid`
    /// ([`range::recorded_sharded`]) are classified in a word-sweep
    /// without entering the CAS protocol.
    fn check_range(
        &self,
        start: usize,
        len: usize,
        tid: WideThreadId,
        access: Access,
        mut on_newly: impl FnMut(usize),
        mut on_conflict: impl FnMut(RaceError),
    ) -> usize {
        let mut conflicts = 0usize;
        let end = start + len;
        let mut buf = [0u64; MAX_WORDS_PER_GRANULE];
        let mut g = start;
        while g < end {
            // Fast sweep: skip every granule whose snapshot already
            // records this access for `tid`. `recorded_sharded` being
            // true means the pure step is `Unchanged`, so skipping is
            // exactly what the per-granule loop would have done.
            while g < end {
                let snap = self.snapshot(g, &mut buf);
                if !range::recorded_sharded(snap, self.geom, tid.0, access) {
                    break;
                }
                g += 1;
            }
            if g >= end {
                break;
            }
            match self.check(g, tid, access) {
                Ok(true) => on_newly(g),
                Ok(false) => {}
                Err(e) => {
                    conflicts += 1;
                    on_conflict(e);
                }
            }
            g += 1;
        }
        conflicts
    }

    /// Ranged `chkread` over `start..start + len`. Returns the number
    /// of conflicting granules; `on_newly` fires for each granule
    /// whose shadow state this call changed, `on_conflict` for each
    /// conflict (so the per-granule outcome fold is reconstructible).
    pub fn check_range_read(
        &self,
        start: usize,
        len: usize,
        tid: WideThreadId,
        on_newly: impl FnMut(usize),
        on_conflict: impl FnMut(RaceError),
    ) -> usize {
        self.check_range(start, len, tid, Access::Read, on_newly, on_conflict)
    }

    /// Ranged `chkwrite` over `start..start + len`.
    pub fn check_range_write(
        &self,
        start: usize,
        len: usize,
        tid: WideThreadId,
        on_newly: impl FnMut(usize),
        on_conflict: impl FnMut(RaceError),
    ) -> usize {
        self.check_range(start, len, tid, Access::Write, on_newly, on_conflict)
    }

    /// [`ShardedShadow::check_range_read`] with the owned-run fast
    /// path: a repeat sweep over a run this thread already owns (or
    /// reads) is a single epoch-stamp compare. See
    /// [`crate::Shadow::check_range_read_cached`] for the stamp
    /// discipline — identical here.
    #[inline]
    pub fn check_range_read_cached<const WAYS: usize>(
        &self,
        start: usize,
        len: usize,
        tid: WideThreadId,
        cache: &mut OwnedCache<WAYS>,
        on_newly: impl FnMut(usize),
        on_conflict: impl FnMut(RaceError),
    ) -> usize {
        let stamp = self.epochs.epoch_sum_of_range(start, start + len);
        if cache.lookup_run(stamp, start, len, false) {
            return 0;
        }
        self.fill_range(
            start,
            len,
            tid,
            cache,
            stamp,
            Access::Read,
            on_newly,
            on_conflict,
        )
    }

    /// [`ShardedShadow::check_range_write`] with the owned-run fast
    /// path.
    #[inline]
    pub fn check_range_write_cached<const WAYS: usize>(
        &self,
        start: usize,
        len: usize,
        tid: WideThreadId,
        cache: &mut OwnedCache<WAYS>,
        on_newly: impl FnMut(usize),
        on_conflict: impl FnMut(RaceError),
    ) -> usize {
        let stamp = self.epochs.epoch_sum_of_range(start, start + len);
        if cache.lookup_run(stamp, start, len, true) {
            return 0;
        }
        self.fill_range(
            start,
            len,
            tid,
            cache,
            stamp,
            Access::Write,
            on_newly,
            on_conflict,
        )
    }

    #[cold]
    #[inline(never)]
    #[allow(clippy::too_many_arguments)]
    fn fill_range<const WAYS: usize>(
        &self,
        start: usize,
        len: usize,
        tid: WideThreadId,
        cache: &mut OwnedCache<WAYS>,
        stamp: u64,
        access: Access,
        mut on_newly: impl FnMut(usize),
        mut on_conflict: impl FnMut(RaceError),
    ) -> usize {
        let mut conflicts = 0usize;
        for g in start..start + len {
            let epoch = self.epochs.epoch_of(g);
            if cache.lookup(epoch, g, access.is_write()) {
                continue;
            }
            match self.check(g, tid, access) {
                Ok(newly) => {
                    cache.insert(g, access.is_write(), epoch);
                    if newly {
                        on_newly(g);
                    }
                }
                Err(e) => {
                    conflicts += 1;
                    on_conflict(e);
                }
            }
        }
        if conflicts == 0 {
            cache.insert_run(start, len, access.is_write(), stamp);
        }
        conflicts
    }

    /// Thread-exit clearing: exact (bit-subtracting) for ids within
    /// the geometry's shards; `SHARED_READ` overflow state cannot be
    /// partially cleared and is left intact (sound but imprecise).
    pub fn clear_thread(&self, granule: usize, tid: WideThreadId) {
        let base = self.base(granule);
        let mut buf = [0u64; MAX_WORDS_PER_GRANULE];
        loop {
            let snap = self.snapshot(granule, &mut buf);
            match sharded::clear_thread(snap, self.geom, tid.0) {
                None => break,
                Some((index, word)) => {
                    if self.words[base + index]
                        .compare_exchange(snap[index], word, Ordering::SeqCst, Ordering::SeqCst)
                        .is_ok()
                    {
                        break;
                    }
                }
            }
        }
        self.epochs.bump(granule);
    }

    /// Full reset (`free` / successful sharing cast): every word of
    /// the granule is zeroed and the epoch of *its region* moves —
    /// cached entries for other regions stay live.
    pub fn clear(&self, granule: usize) {
        let base = self.base(granule);
        for i in 0..self.geom.words_per_granule() {
            self.words[base + i].store(0, Ordering::SeqCst);
        }
        self.epochs.bump(granule);
    }

    /// Clears `len` contiguous granules at once (a whole-block `free`
    /// or sharing cast): one unconditional word-level store sweep
    /// over every shard and overflow word of the span — the clear is
    /// a reset, not a read-modify-write, so no CAS protocol is
    /// needed — then ONE [`EpochTable::bump_granule_range`] covering
    /// the span: each epoch region the block touches is bumped once,
    /// however many granules (or shard words) it holds.
    pub fn clear_range(&self, start: usize, len: usize) {
        if len == 0 {
            return;
        }
        let stride = self.geom.words_per_granule();
        for w in &self.words[start * stride..(start + len) * stride] {
            w.store(0, Ordering::SeqCst);
        }
        self.epochs.bump_granule_range(start, start + len);
    }

    /// [`ShardedShadow::clear_thread`] over `len` contiguous
    /// granules: the per-granule bit-subtracting CAS loop is kept
    /// (exact within the geometry's shards, `SHARED_READ` overflow
    /// left intact), but the whole span pays ONE ranged epoch bump
    /// instead of one per granule.
    pub fn clear_thread_range(&self, start: usize, len: usize, tid: WideThreadId) {
        if len == 0 {
            return;
        }
        for granule in start..start + len {
            let base = self.base(granule);
            let mut buf = [0u64; MAX_WORDS_PER_GRANULE];
            loop {
                let snap = self.snapshot(granule, &mut buf);
                match sharded::clear_thread(snap, self.geom, tid.0) {
                    None => break,
                    Some((index, word)) => {
                        if self.words[base + index]
                            .compare_exchange(snap[index], word, Ordering::SeqCst, Ordering::SeqCst)
                            .is_ok()
                        {
                            break;
                        }
                    }
                }
            }
        }
        self.epochs.bump_granule_range(start, start + len);
    }

    /// The raw shard-0 word (for tids `1..=63` this is the paper's
    /// single-word encoding), for tests and diagnostics.
    pub fn raw(&self, granule: usize) -> u64 {
        self.words[self.base(granule)].load(Ordering::SeqCst)
    }

    /// All of a granule's words (shards then overflow), for tests.
    pub fn raw_words(&self, granule: usize) -> Vec<u64> {
        let base = self.base(granule);
        (0..self.geom.words_per_granule())
            .map(|i| self.words[base + i].load(Ordering::SeqCst))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn wide(n: usize) -> ShardedShadow {
        ShardedShadow::with_geometry(n, ShadowGeometry::for_threads(256))
    }

    #[test]
    fn readers_past_63_keep_exact_identities() {
        let s = wide(1);
        for t in [1u32, 64, 127, 200, 256] {
            assert!(s.check_read(0, WideThreadId(t)).is_ok(), "reader {t}");
        }
        // Any writer conflicts while readers exist...
        assert!(s.check_write(0, WideThreadId(64)).is_err());
        // ...and each exit subtracts exactly.
        for t in [1u32, 127, 200, 256] {
            s.clear_thread(0, WideThreadId(t));
        }
        // Only 64 still reads: its own upgrade now succeeds — the
        // adaptive encoding can never do this after SHARED_READ.
        assert!(s.check_write(0, WideThreadId(64)).is_ok());
    }

    #[test]
    fn cross_shard_writer_excludes_everyone() {
        let s = wide(1);
        s.check_write(0, WideThreadId(100)).unwrap();
        for t in [1u32, 63, 64, 163, 256, 1000] {
            assert!(s.check_read(0, WideThreadId(t)).is_err(), "reader {t}");
            assert!(s.check_write(0, WideThreadId(t)).is_err(), "writer {t}");
        }
        assert!(s.check_write(0, WideThreadId(100)).is_ok(), "owner free");
    }

    #[test]
    fn overflow_ids_beyond_exact_range_are_sound() {
        let s = wide(1); // exact to 315
        assert!(s.check_read(0, WideThreadId(9999)).is_ok());
        assert!(s.check_write(0, WideThreadId(50)).is_err(), "sees overflow");
        s.clear(0);
        assert!(s.check_write(0, WideThreadId(50)).is_ok());
    }

    #[test]
    fn clear_resets_every_word() {
        let s = wide(1);
        s.check_read(0, WideThreadId(1)).unwrap();
        s.check_read(0, WideThreadId(100)).unwrap();
        s.check_read(0, WideThreadId(9999)).unwrap();
        s.clear(0);
        assert!(s.raw_words(0).iter().all(|&w| w == 0));
        assert!(s.check_write(0, WideThreadId(200)).is_ok());
    }

    #[test]
    fn cached_paths_agree_with_uncached() {
        let s = wide(4);
        let mut cache = OwnedCache::<1>::new();
        let t = WideThreadId(100);
        assert_eq!(s.check_write_cached(0, t, &mut cache), Ok(true));
        for _ in 0..10 {
            assert_eq!(s.check_write_cached(0, t, &mut cache), Ok(false));
            assert_eq!(s.check_read_cached(0, t, &mut cache), Ok(false));
        }
        assert_eq!(cache.misses, 1, "one fill, then fast-path hits");
        // An intruder still conflicts, and a clear un-caches.
        assert!(s.check_write(0, WideThreadId(1)).is_err());
        s.clear(0);
        s.check_write(0, WideThreadId(1)).unwrap();
        assert!(s.check_write_cached(0, t, &mut cache).is_err());
    }

    #[test]
    fn clear_leaves_other_regions_cached() {
        // Wide geometry, 128 granules: a clear of granule 0 must not
        // cost a cached owner of a distant granule its entry.
        let s = wide(128);
        assert!(s.epochs().regions() > 1, "a real region table");
        let mut c = OwnedCache::<1>::new();
        s.check_write_cached(127, WideThreadId(200), &mut c)
            .unwrap();
        assert_eq!(c.misses, 1);
        s.clear(0);
        assert_eq!(
            s.check_write_cached(127, WideThreadId(200), &mut c),
            Ok(false)
        );
        assert_eq!(c.misses, 1, "no refill after the distant clear");
        // The degenerate R = 1 geometry still flushes everything.
        let s1 = ShardedShadow::with_epoch_regions(128, ShadowGeometry::for_threads(256), 1);
        assert_eq!(s1.epochs().regions(), 1);
        let mut c1 = OwnedCache::<1>::new();
        s1.check_write_cached(127, WideThreadId(200), &mut c1)
            .unwrap();
        s1.clear(0);
        assert_eq!(
            s1.check_write_cached(127, WideThreadId(200), &mut c1),
            Ok(false)
        );
        assert_eq!(c1.misses, 2, "global epoch: the clear cost a refill");
    }

    #[test]
    fn concurrent_readers_across_shards_never_conflict() {
        let s = Arc::new(wide(32));
        let mut handles = Vec::new();
        for t in (1..=256u32).step_by(16) {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for g in 0..32 {
                    s.check_read(g, WideThreadId(t)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_cross_shard_writers_report_at_least_one_conflict() {
        // The revalidation guarantee: two writers in different shards
        // racing on one granule can both install, but SeqCst ordering
        // makes at least one of them see the other and report.
        for _ in 0..50 {
            let s = Arc::new(wide(1));
            let barrier = Arc::new(std::sync::Barrier::new(2));
            let mut handles = Vec::new();
            for t in [10u32, 200] {
                let s = Arc::clone(&s);
                let b = Arc::clone(&barrier);
                handles.push(std::thread::spawn(move || {
                    b.wait();
                    s.check_write(0, WideThreadId(t)).is_err()
                }));
            }
            let conflicts = handles
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&c| c)
                .count();
            assert!(conflicts >= 1, "a racing writer pair must be reported");
        }
    }

    #[test]
    fn concurrent_disjoint_high_tid_writers_clean() {
        let s = Arc::new(wide(128));
        let mut handles = Vec::new();
        for (i, t) in (64..=256u32).step_by(24).enumerate() {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for rep in 0..200 {
                    let g = i * 8 + rep % 8;
                    s.check_write(g, WideThreadId(t)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    /// The per-granule fold the ranged check must reproduce.
    fn fold_check(
        s: &ShardedShadow,
        start: usize,
        len: usize,
        tid: WideThreadId,
        access: Access,
    ) -> (usize, Vec<usize>) {
        let mut conflicts = 0;
        let mut newly = Vec::new();
        for g in start..start + len {
            match s.check(g, tid, access) {
                Ok(true) => newly.push(g),
                Ok(false) => {}
                Err(_) => conflicts += 1,
            }
        }
        (conflicts, newly)
    }

    #[test]
    fn range_verdict_equals_the_per_granule_fold_across_shards() {
        // Two identically prepared wide shadows: per-granule fold on
        // one, ranged check on the other, same verdicts — including
        // high-tid owners and a cross-shard conflicting stripe.
        let a = wide(32);
        let b = wide(32);
        for s in [&a, &b] {
            for g in 0..8 {
                s.check_write(g, WideThreadId(200)).unwrap();
            }
            for g in 8..16 {
                s.check_read(g, WideThreadId(1)).unwrap();
                s.check_read(g, WideThreadId(100)).unwrap();
            }
            // 16..24 foreign-owned: conflicts for tid 200.
            for g in 16..24 {
                s.check_write(g, WideThreadId(7)).unwrap();
            }
            // 24..32 untouched: newly installed by the sweep.
        }
        let t = WideThreadId(200);
        let (want_conflicts, want_newly) = fold_check(&a, 0, 32, t, Access::Read);
        let mut got_newly = Vec::new();
        let mut got_errs = Vec::new();
        let got_conflicts = b.check_range_read(
            0,
            32,
            t,
            |g| got_newly.push(g),
            |e| got_errs.push(e.granule),
        );
        assert_eq!(got_conflicts, want_conflicts);
        assert_eq!(got_newly, want_newly);
        assert_eq!(got_errs.len(), got_conflicts);
        assert_eq!(got_errs, (16..24).collect::<Vec<_>>());
    }

    #[test]
    fn cached_range_repeat_sweep_is_one_stamp_compare() {
        let s = wide(64);
        let mut c = OwnedCache::<4>::new();
        let t = WideThreadId(150);
        let n = s.check_range_write_cached(0, 64, t, &mut c, |_| {}, |_| panic!("clean"));
        assert_eq!(n, 0);
        let misses_after_fill = c.misses;
        for _ in 0..10 {
            assert_eq!(
                s.check_range_write_cached(0, 64, t, &mut c, |_| panic!(), |_| panic!()),
                0
            );
            // Reads of a writable run ride the same summary slot.
            assert_eq!(
                s.check_range_read_cached(0, 64, t, &mut c, |_| panic!(), |_| panic!()),
                0
            );
        }
        assert_eq!(c.misses, misses_after_fill, "repeats are run hits");
        // A clear inside the run discards the summary, and the refill
        // sees the intruder.
        s.clear(3);
        s.check_write(3, WideThreadId(9)).unwrap();
        let mut conflicts = Vec::new();
        s.check_range_write_cached(0, 64, t, &mut c, |_| {}, |e| conflicts.push(e.granule));
        assert_eq!(conflicts, vec![3], "stale run cannot hide the intruder");
    }

    #[test]
    #[should_panic(expected = "thread id out of range")]
    fn zero_tid_rejected() {
        let s = ShardedShadow::new(1);
        let _ = s.check_read(0, WideThreadId(0));
    }

    #[test]
    fn shadow_bytes_price_the_exactness() {
        let narrow = ShardedShadow::new(4);
        let wide = wide(4);
        assert_eq!(narrow.shadow_bytes(), 4 * 2 * 8, "1 shard + overflow");
        assert_eq!(wide.shadow_bytes(), 4 * 6 * 8, "5 shards + overflow");
        assert_eq!(wide.len(), 4);
    }
}
