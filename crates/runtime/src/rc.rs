//! Reference counting for sharing casts (paper §4.3).
//!
//! Two schemes, compared in the paper:
//!
//! * [`NaiveRc`] — atomically adjust a shared counter on every
//!   pointer write. Simple, but every store pays two contended
//!   read-modify-writes; the paper measured over 60% overhead.
//! * [`LpRc`] — the paper's adaptation of Levanoni & Petrank's
//!   on-the-fly reference counting. Each mutator keeps a private,
//!   unsynchronized log of `(slot, overwritten value)` recorded only
//!   on the *first* update of a slot per epoch (a dirty bit
//!   suppresses re-logging). There is no dedicated collector thread:
//!   the thread that needs a reference count takes the collector
//!   role. Two sets of logs and dirty bits are kept; instead of
//!   stopping the world the collector flips the epoch with a simple
//!   lock-free handshake and waits only for updates still in flight.
//!   Counts may transiently overestimate, which is safe for the
//!   `oneref` check.
//!
//! Both implement [`RcScheme`], so the sharing-cast protocol and the
//! benchmarks are generic over the scheme.

use sharc_testkit::sync::Mutex;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};

/// An object identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjId(pub u32);

fn encode(v: Option<ObjId>) -> u64 {
    match v {
        None => 0,
        Some(ObjId(o)) => o as u64 + 1,
    }
}

fn decode(raw: u64) -> Option<ObjId> {
    if raw == 0 {
        None
    } else {
        Some(ObjId((raw - 1) as u32))
    }
}

/// A reference-counting scheme over a fixed arena of pointer slots.
///
/// `mutator` identifies the calling thread's pre-registered context
/// (`0 .. n_mutators`); the naive scheme ignores it.
pub trait RcScheme: Send + Sync {
    /// Number of pointer slots in the arena.
    fn n_slots(&self) -> usize;
    /// Reads a slot without any bookkeeping.
    fn read_slot(&self, slot: usize) -> Option<ObjId>;
    /// The write barrier: stores `new` into `slot`, maintaining
    /// counts per the scheme's strategy.
    fn store(&self, mutator: usize, slot: usize, new: Option<ObjId>);
    /// The (possibly collecting) reference count of `obj`.
    fn refcount(&self, obj: ObjId) -> i64;
    /// A short name for reports.
    fn name(&self) -> &'static str;
}

// ----- naive scheme -----

/// Eager atomic reference counting: every pointer write adjusts the
/// counters of the old and new referents.
#[derive(Debug)]
pub struct NaiveRc {
    slots: Vec<AtomicU64>,
    counts: Vec<AtomicI64>,
}

impl NaiveRc {
    /// Creates an arena with `n_slots` null slots and `n_objs`
    /// objects with zero counts.
    pub fn new(n_slots: usize, n_objs: usize) -> Self {
        let mut slots = Vec::with_capacity(n_slots);
        slots.resize_with(n_slots, AtomicU64::default);
        let mut counts = Vec::with_capacity(n_objs);
        counts.resize_with(n_objs, AtomicI64::default);
        NaiveRc { slots, counts }
    }
}

impl RcScheme for NaiveRc {
    fn n_slots(&self) -> usize {
        self.slots.len()
    }

    fn read_slot(&self, slot: usize) -> Option<ObjId> {
        decode(self.slots[slot].load(Ordering::Acquire))
    }

    fn store(&self, _mutator: usize, slot: usize, new: Option<ObjId>) {
        let raw = encode(new);
        let old = self.slots[slot].swap(raw, Ordering::AcqRel);
        if let Some(o) = decode(old) {
            self.counts[o.0 as usize].fetch_sub(1, Ordering::AcqRel);
        }
        if let Some(n) = new {
            self.counts[n.0 as usize].fetch_add(1, Ordering::AcqRel);
        }
    }

    fn refcount(&self, obj: ObjId) -> i64 {
        self.counts[obj.0 as usize].load(Ordering::Acquire)
    }

    fn name(&self) -> &'static str {
        "naive"
    }
}

// ----- Levanoni–Petrank adaptation -----

#[derive(Debug, Default)]
struct MutatorCtx {
    /// Both epochs' logs behind one guard. A mutator holds the guard
    /// for the duration of one update; the collector acquires it to
    /// drain, which doubles as the "wait for pending updates"
    /// handshake — no fence on the mutator's fast path.
    logs: Mutex<[Vec<(usize, u64)>; 2]>,
}

/// The adapted Levanoni–Petrank on-the-fly reference counter.
#[derive(Debug)]
pub struct LpRc {
    slots: Vec<AtomicU64>,
    counts: Vec<AtomicI64>,
    /// Dirty bit per slot per epoch.
    dirty: [Vec<AtomicBool>; 2],
    epoch: AtomicUsize,
    mutators: Vec<MutatorCtx>,
    /// Only one thread acts as the collector at a time.
    collector: Mutex<()>,
    /// Log entries ever recorded (dirty misses); the only stores that
    /// touch anything beyond mutator-local state.
    logged: AtomicU64,
    /// Collections performed.
    collects: AtomicU64,
}

/// Operation-mix statistics for the §4.3 ablation. Unlike wall time,
/// these are hardware-independent: the naive scheme performs two
/// read-modify-writes on *shared* count cache lines per store, while
/// the adapted algorithm's per-store work is mutator-local, with
/// shared-line work only at (rare) dirty misses and collections.
#[derive(Debug, Clone, Copy, Default)]
pub struct LpStats {
    pub logged_entries: u64,
    pub collects: u64,
}

impl LpRc {
    /// Creates an arena for `n_slots` slots, `n_objs` objects, and up
    /// to `n_mutators` concurrently-updating threads.
    pub fn new(n_slots: usize, n_objs: usize, n_mutators: usize) -> Self {
        let mut slots = Vec::with_capacity(n_slots);
        slots.resize_with(n_slots, AtomicU64::default);
        let mut counts = Vec::with_capacity(n_objs);
        counts.resize_with(n_objs, AtomicI64::default);
        let mk_dirty = || {
            let mut v = Vec::with_capacity(n_slots);
            v.resize_with(n_slots, AtomicBool::default);
            v
        };
        let mut mutators = Vec::with_capacity(n_mutators);
        mutators.resize_with(n_mutators, MutatorCtx::default);
        LpRc {
            slots,
            counts,
            dirty: [mk_dirty(), mk_dirty()],
            epoch: AtomicUsize::new(0),
            mutators,
            collector: Mutex::new(()),
            logged: AtomicU64::new(0),
            collects: AtomicU64::new(0),
        }
    }

    /// Operation-mix counters for the ablation harness.
    pub fn stats(&self) -> LpStats {
        LpStats {
            logged_entries: self.logged.load(Ordering::Relaxed),
            collects: self.collects.load(Ordering::Relaxed),
        }
    }

    /// Takes the collector role: flips the epoch, drains the old
    /// epoch's logs (acquiring each mutator's guard waits out its
    /// in-flight update — no stop-the-world), and folds them into the
    /// counts.
    pub fn collect(&self) {
        let _guard = self.collector.lock();
        self.collects.fetch_add(1, Ordering::Relaxed);
        let old_e = self.epoch.load(Ordering::SeqCst);
        let new_e = 1 - old_e;
        self.epoch.store(new_e, Ordering::SeqCst);
        // Drain: locking a mutator's guard after the flip guarantees
        // any later update it performs sees the new epoch (the flip
        // happens-before our unlock happens-before its next lock).
        let mut entries: Vec<(usize, u64)> = Vec::new();
        for m in &self.mutators {
            let mut logs = m.logs.lock();
            entries.append(&mut logs[old_e]);
        }
        for (slot, old_raw) in entries {
            if let Some(o) = decode(old_raw) {
                self.counts[o.0 as usize].fetch_sub(1, Ordering::AcqRel);
            }
            if !self.dirty[new_e][slot].load(Ordering::Acquire) {
                // Slot untouched since the flip: credit its current
                // value.
                if let Some(c) = decode(self.slots[slot].load(Ordering::Acquire)) {
                    self.counts[c.0 as usize].fetch_add(1, Ordering::AcqRel);
                }
            } else {
                // Already overwritten in the new epoch: credit the
                // value captured in the live log (it will be debited
                // when that log is processed).
                if let Some(v) = self.find_live_log_value(new_e, slot) {
                    if let Some(c) = decode(v) {
                        self.counts[c.0 as usize].fetch_add(1, Ordering::AcqRel);
                    }
                }
            }
            self.dirty[old_e][slot].store(false, Ordering::Release);
        }
    }

    fn find_live_log_value(&self, epoch: usize, slot: usize) -> Option<u64> {
        for m in &self.mutators {
            let logs = m.logs.lock();
            if let Some(&(_, v)) = logs[epoch].iter().find(|(s, _)| *s == slot) {
                return Some(v);
            }
        }
        None
    }
}

impl RcScheme for LpRc {
    fn n_slots(&self) -> usize {
        self.slots.len()
    }

    fn read_slot(&self, slot: usize) -> Option<ObjId> {
        decode(self.slots[slot].load(Ordering::Acquire))
    }

    fn store(&self, mutator: usize, slot: usize, new: Option<ObjId>) {
        let m = &self.mutators[mutator];
        // The guard is uncontended except when a collector is
        // draining: the common case is one cheap lock/unlock pair.
        let mut logs = m.logs.lock();
        let e = self.epoch.load(Ordering::Acquire);
        // Read before dirty test-and-set: the winner of the dirty bit
        // reads the pre-epoch value (see Levanoni & Petrank). The
        // dirty bit is only set (never tested-and-left), so a plain
        // load screens out the common already-dirty case without an
        // RMW.
        let old = self.slots[slot].load(Ordering::Acquire);
        if !self.dirty[e][slot].load(Ordering::Acquire)
            && !self.dirty[e][slot].swap(true, Ordering::AcqRel)
        {
            logs[e].push((slot, old));
            self.logged.fetch_add(1, Ordering::Relaxed);
        }
        self.slots[slot].store(encode(new), Ordering::Release);
        drop(logs);
    }

    fn refcount(&self, obj: ObjId) -> i64 {
        self.collect();
        self.counts[obj.0 as usize].load(Ordering::Acquire)
    }

    fn name(&self) -> &'static str {
        "levanoni-petrank"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn check_scheme(rc: &dyn RcScheme) {
        // slot0 <- obj0; slot1 <- obj0; slot1 <- obj1; slot0 <- none
        rc.store(0, 0, Some(ObjId(0)));
        rc.store(0, 1, Some(ObjId(0)));
        assert_eq!(rc.refcount(ObjId(0)), 2);
        rc.store(0, 1, Some(ObjId(1)));
        assert_eq!(rc.refcount(ObjId(0)), 1);
        assert_eq!(rc.refcount(ObjId(1)), 1);
        rc.store(0, 0, None);
        assert_eq!(rc.refcount(ObjId(0)), 0);
        assert_eq!(rc.read_slot(1), Some(ObjId(1)));
        assert_eq!(rc.read_slot(0), None);
    }

    #[test]
    fn naive_basic() {
        check_scheme(&NaiveRc::new(4, 4));
    }

    #[test]
    fn lp_basic() {
        check_scheme(&LpRc::new(4, 4, 1));
    }

    #[test]
    fn lp_multiple_updates_one_epoch() {
        // Repeated updates to one slot log only once per epoch, yet
        // counts stay exact after collection.
        let rc = LpRc::new(2, 4, 1);
        for i in 0..4 {
            rc.store(0, 0, Some(ObjId(i)));
        }
        assert_eq!(rc.refcount(ObjId(3)), 1);
        assert_eq!(rc.refcount(ObjId(0)), 0);
        assert_eq!(rc.refcount(ObjId(1)), 0);
        assert_eq!(rc.refcount(ObjId(2)), 0);
    }

    #[test]
    fn lp_counts_across_epochs() {
        let rc = LpRc::new(4, 4, 1);
        rc.store(0, 0, Some(ObjId(2)));
        rc.collect();
        rc.collect();
        // Repeated collections must not double-count.
        assert_eq!(rc.refcount(ObjId(2)), 1);
        rc.store(0, 1, Some(ObjId(2)));
        assert_eq!(rc.refcount(ObjId(2)), 2);
        rc.store(0, 0, None);
        rc.store(0, 1, None);
        assert_eq!(rc.refcount(ObjId(2)), 0);
    }

    #[test]
    fn concurrent_exactness_against_oracle() {
        // Hammer both schemes from several threads with a
        // deterministic per-thread slot partition, then compare the
        // final counts with a sequentially computed oracle.
        for scheme in 0..2usize {
            let n_threads = 4;
            let slots_per = 64;
            let n_slots = n_threads * slots_per;
            let n_objs = 16;
            let rc: Arc<dyn RcScheme> = if scheme == 0 {
                Arc::new(NaiveRc::new(n_slots, n_objs))
            } else {
                Arc::new(LpRc::new(n_slots, n_objs, n_threads))
            };
            let mut handles = Vec::new();
            for t in 0..n_threads {
                let rc = Arc::clone(&rc);
                handles.push(std::thread::spawn(move || {
                    for rep in 0..200 {
                        let slot = t * slots_per + (rep * 7 + t) % slots_per;
                        let obj = ((rep * 13 + t * 5) % n_objs) as u32;
                        rc.store(t, slot, Some(ObjId(obj)));
                    }
                }));
            }
            for h in handles {
                h.join().unwrap();
            }
            // Oracle: count slot contents directly.
            let mut expect = vec![0i64; n_objs];
            for s in 0..n_slots {
                if let Some(o) = rc.read_slot(s) {
                    expect[o.0 as usize] += 1;
                }
            }
            for (o, &want) in expect.iter().enumerate() {
                assert_eq!(
                    rc.refcount(ObjId(o as u32)),
                    want,
                    "{} scheme, obj {o}",
                    rc.name()
                );
            }
        }
    }

    #[test]
    fn lp_concurrent_collector_and_mutators() {
        // A collector thread repeatedly collecting while mutators
        // update must neither deadlock nor corrupt counts beyond
        // transient overestimates; final counts are exact.
        let rc = Arc::new(LpRc::new(128, 8, 3));
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        for t in 0..3usize {
            let rc = Arc::clone(&rc);
            handles.push(std::thread::spawn(move || {
                for rep in 0..500 {
                    rc.store(t, t * 40 + rep % 40, Some(ObjId((rep % 8) as u32)));
                }
            }));
        }
        let collector = {
            let rc = Arc::clone(&rc);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    rc.collect();
                }
            })
        };
        for h in handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        collector.join().unwrap();
        let mut expect = [0i64; 8];
        for s in 0..128 {
            if let Some(o) = rc.read_slot(s) {
                expect[o.0 as usize] += 1;
            }
        }
        for o in 0..8u32 {
            assert_eq!(rc.refcount(ObjId(o)), expect[o as usize], "obj {o}");
        }
    }
}
