//! A scalable shadow encoding — the future work named in §4.2.1 and
//! §7: "This encoding of reader, writer sets does not scale well to
//! larger numbers of threads. In the future, we plan to explore
//! alternative, more efficient encodings" / "its runtime race
//! detection should be able to handle a larger number of threads with
//! low overhead."
//!
//! One 8-byte word per granule encodes an *adaptive* state instead of
//! a bitmap, supporting 2³⁰ thread ids at constant shadow cost:
//!
//! ```text
//! EMPTY                      nobody has touched the granule
//! EXCL(tid)                  one thread reads and writes
//! READ1(tid)                 one thread reads
//! SHARED_READ                many readers (identities not tracked)
//! ```
//!
//! Since the sharded refactor this type is a thin wrapper over
//! [`ShardedShadow`] with a **zero-shard geometry**
//! ([`ShadowGeometry::adaptive_only`]): every thread id goes through
//! the adaptive overflow word, which is exactly the behaviour this
//! module used to implement with its own CAS loop. The state machine
//! is still `sharc_checker::step::adaptive`; only the loop is shared
//! now. With zero shards a granule has a single word, so the sharded
//! wrapper's cross-word revalidation degenerates to re-reading the
//! word just CASed — semantics identical to the old single-word loop.
//!
//! Trade-off versus the paper's bitmap: once a granule is read-shared
//! the individual reader identities are forgotten, so a thread's exit
//! cannot clear its contribution — a later writer will (soundly but
//! imprecisely) conflict until the granule is reset by `free` or a
//! sharing cast. The bitmap encoding is exact for up to `8n − 1`
//! threads; this encoding is *sound for any number of threads* and
//! exact whenever a granule has at most one concurrent reader. For
//! exactness *past* 63 threads, use [`ShardedShadow`] with
//! `ShadowGeometry::for_threads(n)` — that is the whole point of the
//! hybrid.

use crate::shadow::RaceError;
use crate::sharded::ShardedShadow;
use sharc_checker::{EpochTable, OwnedCache, ShadowGeometry};

/// A thread id for the scalable encoding (1-based, up to 2³⁰ − 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WideThreadId(pub u32);

/// Shadow state with the adaptive single-word-per-granule encoding.
#[derive(Debug)]
pub struct ScalableShadow {
    inner: ShardedShadow,
}

impl ScalableShadow {
    /// Creates state for `n_granules` granules.
    pub fn new(n_granules: usize) -> Self {
        ScalableShadow {
            inner: ShardedShadow::with_geometry(n_granules, ShadowGeometry::adaptive_only()),
        }
    }

    /// [`ScalableShadow::new`] with an explicit epoch-region count
    /// (`regions = 1` = the degenerate global epoch; see
    /// [`sharc_checker::epoch`]).
    pub fn with_epoch_regions(n_granules: usize, regions: usize) -> Self {
        ScalableShadow {
            inner: ShardedShadow::with_epoch_regions(
                n_granules,
                ShadowGeometry::adaptive_only(),
                regions,
            ),
        }
    }

    /// The epoch-region table guarding this shadow.
    pub fn epochs(&self) -> &EpochTable {
        self.inner.epochs()
    }

    /// Number of granules covered.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if no granules are covered.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Shadow bytes consumed — 8 per granule regardless of thread
    /// count (the bitmap needs `threads/8` rounded up).
    pub fn shadow_bytes(&self) -> usize {
        self.inner.shadow_bytes()
    }

    /// The `chkread` check-and-record.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is zero or exceeds 2³⁰ − 1.
    pub fn check_read(&self, granule: usize, tid: WideThreadId) -> Result<bool, RaceError> {
        self.inner.check_read(granule, tid)
    }

    /// The `chkwrite` check-and-record.
    ///
    /// # Panics
    ///
    /// Panics if `tid` is zero or exceeds 2³⁰ − 1.
    pub fn check_write(&self, granule: usize, tid: WideThreadId) -> Result<bool, RaceError> {
        self.inner.check_write(granule, tid)
    }

    /// [`ScalableShadow::check_read`] with the owned-granule fast
    /// path (per-region epochs; see [`sharc_checker::cache`]).
    #[inline]
    pub fn check_read_cached<const WAYS: usize>(
        &self,
        granule: usize,
        tid: WideThreadId,
        cache: &mut OwnedCache<WAYS>,
    ) -> Result<bool, RaceError> {
        self.inner.check_read_cached(granule, tid, cache)
    }

    /// [`ScalableShadow::check_write`] with the owned-granule fast
    /// path.
    #[inline]
    pub fn check_write_cached<const WAYS: usize>(
        &self,
        granule: usize,
        tid: WideThreadId,
        cache: &mut OwnedCache<WAYS>,
    ) -> Result<bool, RaceError> {
        self.inner.check_write_cached(granule, tid, cache)
    }

    /// Ranged `chkread` over `start..start + len` — one call per
    /// buffer sweep; same fold-of-per-granule contract as
    /// [`crate::Shadow::check_range_read`].
    pub fn check_range_read(
        &self,
        start: usize,
        len: usize,
        tid: WideThreadId,
        on_newly: impl FnMut(usize),
        on_conflict: impl FnMut(RaceError),
    ) -> usize {
        self.inner
            .check_range_read(start, len, tid, on_newly, on_conflict)
    }

    /// Ranged `chkwrite` over `start..start + len`.
    pub fn check_range_write(
        &self,
        start: usize,
        len: usize,
        tid: WideThreadId,
        on_newly: impl FnMut(usize),
        on_conflict: impl FnMut(RaceError),
    ) -> usize {
        self.inner
            .check_range_write(start, len, tid, on_newly, on_conflict)
    }

    /// [`ScalableShadow::check_range_read`] with the owned-run fast
    /// path (repeat sweeps are one epoch-stamp compare).
    #[inline]
    pub fn check_range_read_cached<const WAYS: usize>(
        &self,
        start: usize,
        len: usize,
        tid: WideThreadId,
        cache: &mut OwnedCache<WAYS>,
        on_newly: impl FnMut(usize),
        on_conflict: impl FnMut(RaceError),
    ) -> usize {
        self.inner
            .check_range_read_cached(start, len, tid, cache, on_newly, on_conflict)
    }

    /// [`ScalableShadow::check_range_write`] with the owned-run fast
    /// path.
    #[inline]
    pub fn check_range_write_cached<const WAYS: usize>(
        &self,
        start: usize,
        len: usize,
        tid: WideThreadId,
        cache: &mut OwnedCache<WAYS>,
        on_newly: impl FnMut(usize),
        on_conflict: impl FnMut(RaceError),
    ) -> usize {
        self.inner
            .check_range_write_cached(start, len, tid, cache, on_newly, on_conflict)
    }

    /// Thread-exit clearing: exact for granules this thread owns
    /// exclusively; `SHARED_READ` granules cannot be partially
    /// cleared (identities are not tracked) and are left intact.
    pub fn clear_thread(&self, granule: usize, tid: WideThreadId) {
        self.inner.clear_thread(granule, tid);
    }

    /// Full reset (`free` / successful sharing cast).
    pub fn clear(&self, granule: usize) {
        self.inner.clear(granule);
    }

    /// Clears `len` contiguous granules at once — the whole-block
    /// `free`/cast reset, with one ranged epoch bump for the span
    /// (see [`crate::ShardedShadow::clear_range`]).
    pub fn clear_range(&self, start: usize, len: usize) {
        self.inner.clear_range(start, len);
    }

    /// [`ScalableShadow::clear_thread`] over `len` contiguous
    /// granules, with one ranged epoch bump for the span.
    pub fn clear_thread_range(&self, start: usize, len: usize, tid: WideThreadId) {
        self.inner.clear_thread_range(start, len, tid);
    }

    /// Raw encoded state, for tests.
    pub fn raw(&self, granule: usize) -> u64 {
        self.inner.raw(granule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_thread_lifecycle() {
        let s = ScalableShadow::new(2);
        let t = WideThreadId(1);
        assert_eq!(s.check_read(0, t), Ok(true));
        assert_eq!(s.check_read(0, t), Ok(false));
        assert!(s.check_write(0, t).is_ok());
        assert!(s.check_read(0, t).is_ok());
        assert!(s.check_write(0, t).is_ok());
    }

    #[test]
    fn supports_huge_thread_ids() {
        // The bitmap tops out at 63 threads; this encoding takes ids
        // up to 2^30 - 1 at the same 8 bytes per granule.
        let s = ScalableShadow::new(1);
        assert!(s.check_read(0, WideThreadId(1_000_000)).is_ok());
        assert!(s.check_write(0, WideThreadId(1_000_000)).is_ok());
        assert!(s.check_write(0, WideThreadId(999_999)).is_err());
    }

    #[test]
    fn many_readers_then_writer_conflicts() {
        let s = ScalableShadow::new(1);
        for t in 1..=100u32 {
            assert!(s.check_read(0, WideThreadId(t)).is_ok(), "reader {t}");
        }
        assert!(s.check_write(0, WideThreadId(1)).is_err());
    }

    #[test]
    fn writer_excludes_everyone() {
        let s = ScalableShadow::new(1);
        s.check_write(0, WideThreadId(7)).unwrap();
        assert!(s.check_read(0, WideThreadId(8)).is_err());
        assert!(s.check_write(0, WideThreadId(8)).is_err());
        assert!(s.check_read(0, WideThreadId(7)).is_ok());
    }

    #[test]
    fn exclusive_exit_clears() {
        let s = ScalableShadow::new(1);
        s.check_write(0, WideThreadId(3)).unwrap();
        s.clear_thread(0, WideThreadId(3));
        assert!(s.check_write(0, WideThreadId(4)).is_ok());
    }

    #[test]
    fn shared_read_exit_is_conservative() {
        // Documented imprecision: after read-sharing, exits cannot be
        // subtracted, so the next writer conflicts until a reset.
        let s = ScalableShadow::new(1);
        s.check_read(0, WideThreadId(1)).unwrap();
        s.check_read(0, WideThreadId(2)).unwrap();
        s.clear_thread(0, WideThreadId(1));
        s.clear_thread(0, WideThreadId(2));
        assert!(
            s.check_write(0, WideThreadId(3)).is_err(),
            "sound but imprecise"
        );
        s.clear(0);
        assert!(s.check_write(0, WideThreadId(3)).is_ok());
    }

    #[test]
    fn single_reader_upgrade_to_writer() {
        let s = ScalableShadow::new(1);
        s.check_read(0, WideThreadId(5)).unwrap();
        assert!(s.check_write(0, WideThreadId(5)).is_ok(), "own upgrade");
    }

    #[test]
    fn concurrent_disjoint_writers_clean() {
        let s = Arc::new(ScalableShadow::new(64));
        let mut handles = Vec::new();
        for t in 1..=8u32 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for rep in 0..200 {
                    let g = (t as usize - 1) * 8 + rep % 8;
                    s.check_write(g, WideThreadId(t)).unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn concurrent_same_granule_writers_conflict() {
        let s = Arc::new(ScalableShadow::new(1));
        let mut handles = Vec::new();
        for t in 1..=4u32 {
            let s = Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                (0..100)
                    .filter(|_| s.check_write(0, WideThreadId(t)).is_err())
                    .count()
            }));
        }
        let conflicts: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(conflicts > 0);
    }

    #[test]
    #[should_panic(expected = "thread id out of range")]
    fn zero_tid_rejected() {
        let s = ScalableShadow::new(1);
        let _ = s.check_read(0, WideThreadId(0));
    }

    #[test]
    fn ranged_sweep_matches_per_granule_and_caches_the_run() {
        let s = ScalableShadow::new(16);
        let t = WideThreadId(70_000);
        // Foreign owner in the middle of the run.
        s.check_write(7, WideThreadId(3)).unwrap();
        let mut newly = Vec::new();
        let mut bad = Vec::new();
        let n = s.check_range_write(0, 16, t, |g| newly.push(g), |e| bad.push(e.granule));
        assert_eq!(n, 1);
        assert_eq!(bad, vec![7]);
        assert_eq!(newly.len(), 15, "every clean granule newly installed");
        // Clear the intruder; the cached sweep now fills and then
        // hits the run summary on repeats.
        s.clear(7);
        let mut c = OwnedCache::<2>::new();
        assert_eq!(
            s.check_range_write_cached(0, 16, t, &mut c, |_| {}, |_| panic!("clean")),
            0
        );
        let misses = c.misses;
        for _ in 0..5 {
            assert_eq!(
                s.check_range_write_cached(0, 16, t, &mut c, |_| panic!(), |_| panic!()),
                0
            );
        }
        assert_eq!(c.misses, misses, "repeat sweeps are one stamp compare");
    }
}
