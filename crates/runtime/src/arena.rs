//! A payload arena with attached shadow memory and pluggable access
//! policies, so the same workload code can run uninstrumented
//! (baseline) or with SharC's dynamic checks — the methodology behind
//! Table 1's "Time Orig./SharC" columns.

use crate::locks::ThreadCtx;
use crate::shadow::{Shadow, ShadowWord};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

/// Payload 8-byte words per shadow granule, derived from the one
/// workspace-wide granule definition — re-exported at the crate root
/// so workloads can convert word spans to granule spans.
/// workspace-wide granule definition (`sharc_checker::GRANULE_BYTES`
/// = the paper's 16 bytes).
pub const GRANULE_WORDS: usize = sharc_checker::GRANULE_WORDS;

const _: () = assert!(
    GRANULE_WORDS * 8 == sharc_checker::GRANULE_BYTES,
    "arena words must tile the shared granule exactly"
);

/// The granule span `(first, len)` covered by payload words
/// `start .. start + words` (`words > 0`) — the ONE word-to-granule
/// conversion shared by the narrow [`Arena`] and the wide
/// [`crate::wide::WideArena`], so the ranged clear/check paths agree
/// on coverage by construction.
#[inline]
pub fn granule_span(start: usize, words: usize) -> (usize, usize) {
    let g0 = start / GRANULE_WORDS;
    let g1 = (start + words - 1) / GRANULE_WORDS;
    (g0, g1 - g0 + 1)
}

/// Sorts and dedupes a thread's logged granules, coalescing them into
/// maximal consecutive runs — `clear_run(start, len)` fires once per
/// run — and leaves the log empty. A hot-loop thread re-logs a
/// granule every time a clear lets it re-install its bit, so the raw
/// log carries duplicates; draining runs instead of entries means
/// exit pays one ranged clear (one epoch bump per covered region)
/// per contiguous footprint rather than one clear-plus-bump per
/// logged access.
pub(crate) fn drain_logged_runs(log: &mut Vec<usize>, mut clear_run: impl FnMut(usize, usize)) {
    log.sort_unstable();
    log.dedup();
    let mut i = 0;
    while i < log.len() {
        let start = log[i];
        let mut end = start + 1;
        i += 1;
        while i < log.len() && log[i] == end {
            end += 1;
            i += 1;
        }
        clear_run(start, end - start);
    }
    log.clear();
}

/// A word arena with shadow state.
#[derive(Debug)]
pub struct Arena<W: ShadowWord = AtomicU8> {
    data: Vec<AtomicU64>,
    shadow: Shadow<W>,
}

impl<W: ShadowWord> Arena<W> {
    /// Creates an arena of `n_words` zeroed 8-byte words.
    pub fn new(n_words: usize) -> Self {
        let mut data = Vec::with_capacity(n_words);
        data.resize_with(n_words, AtomicU64::default);
        let n_granules = n_words.div_ceil(GRANULE_WORDS);
        Arena {
            data,
            shadow: Shadow::new(n_granules),
        }
    }

    /// [`Arena::new`] with an explicit epoch-region count for the
    /// shadow (see [`sharc_checker::epoch`]); `regions = 1` is the
    /// degenerate global epoch where every `free` flushes every
    /// thread's whole owned cache.
    pub fn with_epoch_regions(n_words: usize, regions: usize) -> Self {
        let mut data = Vec::with_capacity(n_words);
        data.resize_with(n_words, AtomicU64::default);
        let n_granules = n_words.div_ceil(GRANULE_WORDS);
        Arena {
            data,
            shadow: Shadow::with_epoch_regions(n_granules, regions),
        }
    }

    /// Number of payload words.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the arena holds no words.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Bytes of shadow memory (the paper's memory overhead).
    pub fn shadow_bytes(&self) -> usize {
        self.shadow.shadow_bytes()
    }

    /// Payload bytes.
    pub fn payload_bytes(&self) -> usize {
        self.data.len() * 8
    }

    /// An unchecked (baseline / private-mode) read.
    #[inline]
    pub fn read_unchecked(&self, i: usize) -> u64 {
        self.data[i].load(Ordering::Relaxed)
    }

    /// An unchecked (baseline / private-mode) write.
    #[inline]
    pub fn write_unchecked(&self, i: usize, v: u64) {
        self.data[i].store(v, Ordering::Relaxed);
    }

    /// A dynamic-mode read: `chkread` on the word's granule, then the
    /// load. Conflicts are counted in `ctx` (logging mode) rather
    /// than aborting, like the tool's default reporting behaviour.
    #[inline]
    pub fn read_checked(&self, ctx: &mut ThreadCtx, i: usize) -> u64 {
        ctx.checked_accesses += 1;
        let g = i / GRANULE_WORDS;
        ctx.emit_access(g, false);
        match self.shadow.check_read(g, ctx.tid) {
            Ok(true) => ctx.access_log.push(g),
            Ok(false) => {}
            Err(_) => ctx.conflicts += 1,
        }
        self.data[i].load(Ordering::Acquire)
    }

    /// A dynamic-mode write: `chkwrite`, then the store.
    #[inline]
    pub fn write_checked(&self, ctx: &mut ThreadCtx, i: usize, v: u64) {
        ctx.checked_accesses += 1;
        let g = i / GRANULE_WORDS;
        ctx.emit_access(g, true);
        match self.shadow.check_write(g, ctx.tid) {
            Ok(true) => ctx.access_log.push(g),
            Ok(false) => {}
            Err(_) => ctx.conflicts += 1,
        }
        self.data[i].store(v, Ordering::Release);
    }

    /// [`Arena::read_checked`] through the owned-granule epoch cache:
    /// repeated private reads skip the atomic shadow check.
    #[inline]
    pub fn read_cached(&self, ctx: &mut ThreadCtx, i: usize) -> u64 {
        ctx.checked_accesses += 1;
        let g = i / GRANULE_WORDS;
        ctx.emit_access(g, false);
        match self
            .shadow
            .check_read_cached(g, ctx.tid, &mut ctx.owned_cache)
        {
            Ok(true) => ctx.access_log.push(g),
            Ok(false) => {}
            Err(_) => ctx.conflicts += 1,
        }
        self.data[i].load(Ordering::Acquire)
    }

    /// [`Arena::write_checked`] through the owned-granule epoch
    /// cache: a cached exclusive owner pays one relaxed load and one
    /// array probe instead of the CAS protocol.
    #[inline]
    pub fn write_cached(&self, ctx: &mut ThreadCtx, i: usize, v: u64) {
        ctx.checked_accesses += 1;
        let g = i / GRANULE_WORDS;
        ctx.emit_access(g, true);
        match self
            .shadow
            .check_write_cached(g, ctx.tid, &mut ctx.owned_cache)
        {
            Ok(true) => ctx.access_log.push(g),
            Ok(false) => {}
            Err(_) => ctx.conflicts += 1,
        }
        self.data[i].store(v, Ordering::Release);
    }

    /// A dynamic-mode **ranged** read: ONE `chkread` over the whole
    /// granule span of `start .. start + words`, then the loads —
    /// `each(i, value)` fires once per word. The verdict is the fold
    /// of per-granule checks (see
    /// [`crate::Shadow::check_range_read`]), but conflicts are
    /// counted **per granule**, not per word: a per-word loop through
    /// [`Arena::read_checked`] re-reports a conflicting granule for
    /// every word that touches it.
    pub fn read_range_checked(
        &self,
        ctx: &mut ThreadCtx,
        start: usize,
        words: usize,
        mut each: impl FnMut(usize, u64),
    ) {
        if words == 0 {
            return;
        }
        ctx.checked_accesses += words as u64;
        let (g0, glen) = granule_span(start, words);
        ctx.emit_range(g0, glen, false);
        let tid = ctx.tid;
        ctx.conflicts +=
            self.shadow
                .check_range_read(g0, glen, tid, |g| ctx.access_log.push(g), |_| {});
        for i in start..start + words {
            each(i, self.data[i].load(Ordering::Acquire));
        }
    }

    /// A dynamic-mode **ranged** write: one `chkwrite` over the
    /// granule span, then the stores — word `i` receives `value(i)`.
    pub fn write_range_checked(
        &self,
        ctx: &mut ThreadCtx,
        start: usize,
        words: usize,
        mut value: impl FnMut(usize) -> u64,
    ) {
        if words == 0 {
            return;
        }
        ctx.checked_accesses += words as u64;
        let (g0, glen) = granule_span(start, words);
        ctx.emit_range(g0, glen, true);
        let tid = ctx.tid;
        ctx.conflicts +=
            self.shadow
                .check_range_write(g0, glen, tid, |g| ctx.access_log.push(g), |_| {});
        for i in start..start + words {
            self.data[i].store(value(i), Ordering::Release);
        }
    }

    /// [`Arena::read_range_checked`] through the owned-**run** cache:
    /// a repeat sweep over a run this thread already owns costs one
    /// epoch-stamp compare for the whole buffer (see
    /// [`sharc_checker::cache`]'s run slots).
    pub fn read_range_cached(
        &self,
        ctx: &mut ThreadCtx,
        start: usize,
        words: usize,
        mut each: impl FnMut(usize, u64),
    ) {
        if words == 0 {
            return;
        }
        ctx.checked_accesses += words as u64;
        let (g0, glen) = granule_span(start, words);
        ctx.emit_range(g0, glen, false);
        let tid = ctx.tid;
        ctx.conflicts += self.shadow.check_range_read_cached(
            g0,
            glen,
            tid,
            &mut ctx.owned_cache,
            |g| ctx.access_log.push(g),
            |_| {},
        );
        for i in start..start + words {
            each(i, self.data[i].load(Ordering::Acquire));
        }
    }

    /// [`Arena::write_range_checked`] through the owned-run cache.
    pub fn write_range_cached(
        &self,
        ctx: &mut ThreadCtx,
        start: usize,
        words: usize,
        mut value: impl FnMut(usize) -> u64,
    ) {
        if words == 0 {
            return;
        }
        ctx.checked_accesses += words as u64;
        let (g0, glen) = granule_span(start, words);
        ctx.emit_range(g0, glen, true);
        let tid = ctx.tid;
        ctx.conflicts += self.shadow.check_range_write_cached(
            g0,
            glen,
            tid,
            &mut ctx.owned_cache,
            |g| ctx.access_log.push(g),
            |_| {},
        );
        for i in start..start + words {
            self.data[i].store(value(i), Ordering::Release);
        }
    }

    /// Clears the shadow state covering `words` starting at `start`
    /// (used by `free` and after successful sharing casts): ONE
    /// word-level ranged clear with a single epoch bump per covered
    /// region, not a per-granule loop.
    pub fn clear_range(&self, start: usize, words: usize) {
        if words == 0 {
            return;
        }
        let (g0, glen) = granule_span(start, words);
        self.shadow.clear_range(g0, glen);
    }

    /// Thread exit: clears every shadow bit this thread set
    /// (non-overlapping lifetimes are not races). The access log is
    /// coalesced into contiguous runs — duplicates and all — so a
    /// hot-loop thread pays one ranged clear per footprint, not one
    /// clear per logged access.
    pub fn thread_exit(&self, ctx: &mut ThreadCtx) {
        let tid = ctx.tid;
        ctx.owned_cache.invalidate_all();
        drain_logged_runs(&mut ctx.access_log, |start, len| {
            self.shadow.clear_thread_range(start, len, tid)
        });
        if let Some(sink) = &ctx.sink {
            sink.record(sharc_checker::CheckEvent::ThreadExit { tid: tid.0 as u32 });
        }
    }

    /// Direct access to the shadow, for tests and detectors.
    pub fn shadow(&self) -> &Shadow<W> {
        &self.shadow
    }
}

/// How a workload touches memory: the baseline runs [`Unchecked`],
/// the SharC build runs [`Checked`] on its dynamic-mode data. Both
/// are zero-size and fully inlined, so the comparison measures
/// exactly the cost of the checks.
pub trait AccessPolicy: Copy + Send + 'static {
    const NAME: &'static str;
    fn read<W: ShadowWord>(arena: &Arena<W>, ctx: &mut ThreadCtx, i: usize) -> u64;
    fn write<W: ShadowWord>(arena: &Arena<W>, ctx: &mut ThreadCtx, i: usize, v: u64);

    /// One sweep reading words `start .. start + words`, `each(i, v)`
    /// per word. The default lowers to per-word [`AccessPolicy::read`]
    /// calls; checked policies override it with **one** ranged check
    /// per sweep — same verdicts, one shadow pass.
    #[inline]
    fn read_range<W: ShadowWord>(
        arena: &Arena<W>,
        ctx: &mut ThreadCtx,
        start: usize,
        words: usize,
        each: &mut dyn FnMut(usize, u64),
    ) {
        for i in start..start + words {
            each(i, Self::read(arena, ctx, i));
        }
    }

    /// One sweep writing `value(i)` to words `start .. start + words`.
    #[inline]
    fn write_range<W: ShadowWord>(
        arena: &Arena<W>,
        ctx: &mut ThreadCtx,
        start: usize,
        words: usize,
        value: &mut dyn FnMut(usize) -> u64,
    ) {
        for i in start..start + words {
            let v = value(i);
            Self::write(arena, ctx, i, v);
        }
    }
}

/// Baseline: no instrumentation at all.
#[derive(Debug, Clone, Copy, Default)]
pub struct Unchecked;

impl AccessPolicy for Unchecked {
    const NAME: &'static str = "orig";
    #[inline(always)]
    fn read<W: ShadowWord>(arena: &Arena<W>, ctx: &mut ThreadCtx, i: usize) -> u64 {
        ctx.total_accesses += 1;
        arena.read_unchecked(i)
    }
    #[inline(always)]
    fn write<W: ShadowWord>(arena: &Arena<W>, ctx: &mut ThreadCtx, i: usize, v: u64) {
        ctx.total_accesses += 1;
        arena.write_unchecked(i, v);
    }
    #[inline]
    fn read_range<W: ShadowWord>(
        arena: &Arena<W>,
        ctx: &mut ThreadCtx,
        start: usize,
        words: usize,
        each: &mut dyn FnMut(usize, u64),
    ) {
        ctx.total_accesses += words as u64;
        for i in start..start + words {
            each(i, arena.read_unchecked(i));
        }
    }
    #[inline]
    fn write_range<W: ShadowWord>(
        arena: &Arena<W>,
        ctx: &mut ThreadCtx,
        start: usize,
        words: usize,
        value: &mut dyn FnMut(usize) -> u64,
    ) {
        ctx.total_accesses += words as u64;
        for i in start..start + words {
            arena.write_unchecked(i, value(i));
        }
    }
}

/// SharC dynamic-mode checking.
#[derive(Debug, Clone, Copy, Default)]
pub struct Checked;

impl AccessPolicy for Checked {
    const NAME: &'static str = "sharc";
    #[inline(always)]
    fn read<W: ShadowWord>(arena: &Arena<W>, ctx: &mut ThreadCtx, i: usize) -> u64 {
        ctx.total_accesses += 1;
        arena.read_checked(ctx, i)
    }
    #[inline(always)]
    fn write<W: ShadowWord>(arena: &Arena<W>, ctx: &mut ThreadCtx, i: usize, v: u64) {
        ctx.total_accesses += 1;
        arena.write_checked(ctx, i, v);
    }
    #[inline]
    fn read_range<W: ShadowWord>(
        arena: &Arena<W>,
        ctx: &mut ThreadCtx,
        start: usize,
        words: usize,
        each: &mut dyn FnMut(usize, u64),
    ) {
        ctx.total_accesses += words as u64;
        arena.read_range_checked(ctx, start, words, each);
    }
    #[inline]
    fn write_range<W: ShadowWord>(
        arena: &Arena<W>,
        ctx: &mut ThreadCtx,
        start: usize,
        words: usize,
        value: &mut dyn FnMut(usize) -> u64,
    ) {
        ctx.total_accesses += words as u64;
        arena.write_range_checked(ctx, start, words, value);
    }
}

/// SharC dynamic-mode checking through the owned-granule epoch cache
/// fast path — same verdicts as [`Checked`], cheaper steady state on
/// thread-private data.
#[derive(Debug, Clone, Copy, Default)]
pub struct CachedChecked;

impl AccessPolicy for CachedChecked {
    const NAME: &'static str = "sharc-cached";
    #[inline(always)]
    fn read<W: ShadowWord>(arena: &Arena<W>, ctx: &mut ThreadCtx, i: usize) -> u64 {
        ctx.total_accesses += 1;
        arena.read_cached(ctx, i)
    }
    #[inline(always)]
    fn write<W: ShadowWord>(arena: &Arena<W>, ctx: &mut ThreadCtx, i: usize, v: u64) {
        ctx.total_accesses += 1;
        arena.write_cached(ctx, i, v);
    }
    #[inline]
    fn read_range<W: ShadowWord>(
        arena: &Arena<W>,
        ctx: &mut ThreadCtx,
        start: usize,
        words: usize,
        each: &mut dyn FnMut(usize, u64),
    ) {
        ctx.total_accesses += words as u64;
        arena.read_range_cached(ctx, start, words, each);
    }
    #[inline]
    fn write_range<W: ShadowWord>(
        arena: &Arena<W>,
        ctx: &mut ThreadCtx,
        start: usize,
        words: usize,
        value: &mut dyn FnMut(usize) -> u64,
    ) {
        ctx.total_accesses += words as u64;
        arena.write_range_cached(ctx, start, words, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shadow::ThreadId;
    use std::sync::Arc;

    #[test]
    fn unchecked_roundtrip() {
        let a: Arena = Arena::new(8);
        a.write_unchecked(3, 42);
        assert_eq!(a.read_unchecked(3), 42);
        assert_eq!(a.payload_bytes(), 64);
        assert_eq!(a.shadow_bytes(), 4, "1 shadow byte per 16 payload bytes");
    }

    #[test]
    fn checked_single_thread_no_conflicts() {
        let a: Arena = Arena::new(8);
        let mut ctx = ThreadCtx::new(ThreadId(1));
        a.write_checked(&mut ctx, 0, 1);
        assert_eq!(a.read_checked(&mut ctx, 0), 1);
        assert_eq!(ctx.conflicts, 0);
        assert_eq!(ctx.checked_accesses, 2);
    }

    #[test]
    fn checked_cross_thread_write_conflicts() {
        let a: Arena = Arena::new(2);
        let mut c1 = ThreadCtx::new(ThreadId(1));
        let mut c2 = ThreadCtx::new(ThreadId(2));
        a.write_checked(&mut c1, 0, 1);
        a.write_checked(&mut c2, 0, 2);
        assert_eq!(c2.conflicts, 1);
    }

    #[test]
    fn thread_exit_enables_reuse() {
        let a: Arena = Arena::new(2);
        let mut c1 = ThreadCtx::new(ThreadId(1));
        a.write_checked(&mut c1, 0, 1);
        a.thread_exit(&mut c1);
        let mut c2 = ThreadCtx::new(ThreadId(2));
        a.write_checked(&mut c2, 0, 2);
        assert_eq!(c2.conflicts, 0);
    }

    #[test]
    fn clear_range_covers_granules() {
        let a: Arena = Arena::new(8);
        let mut c1 = ThreadCtx::new(ThreadId(1));
        for i in 0..8 {
            a.write_checked(&mut c1, i, i as u64);
        }
        a.clear_range(0, 8);
        let mut c2 = ThreadCtx::new(ThreadId(2));
        for i in 0..8 {
            a.write_checked(&mut c2, i, 0);
        }
        assert_eq!(c2.conflicts, 0);
    }

    #[test]
    fn coalesced_thread_exit_matches_per_granule_clear() {
        // `thread_exit` coalesces the access log into runs and clears
        // them with `clear_thread_range`; the final shadow words must
        // be bit-identical to the per-granule `clear_thread` fold it
        // replaced — including granules another thread still reads.
        let drive = |a: &Arena| -> (ThreadCtx, ThreadCtx) {
            let mut c1 = ThreadCtx::new(ThreadId(1));
            let mut c2 = ThreadCtx::new(ThreadId(2));
            // Two disjoint runs, logged out of order and with
            // duplicates (read-then-write registers a granule twice).
            for i in (20..28).rev() {
                a.write_checked(&mut c1, i, i as u64);
            }
            for i in 0..8 {
                let _ = a.read_checked(&mut c1, i);
                a.write_checked(&mut c1, i, i as u64);
            }
            // Thread 2 shares reads on part of the first run: its
            // reader bits must survive thread 1's exit.
            for i in 0..4 {
                let _ = a.read_checked(&mut c2, i);
            }
            (c1, c2)
        };
        let coalesced: Arena = Arena::new(32);
        let folded: Arena = Arena::new(32);
        let (mut exit_c1, _keep2) = drive(&coalesced);
        let (mut fold_c1, _keep2b) = drive(&folded);
        assert_eq!(exit_c1.access_log, fold_c1.access_log);
        coalesced.thread_exit(&mut exit_c1);
        // The pre-coalescing semantics: one clear per logged granule.
        for g in fold_c1.access_log.drain(..) {
            folded.shadow.clear_thread(g, ThreadId(1));
        }
        for g in 0..16 {
            assert_eq!(
                coalesced.shadow.raw(g),
                folded.shadow.raw(g),
                "granule {g} diverged"
            );
        }
        assert!(exit_c1.access_log.is_empty(), "exit drains the log");
    }

    #[test]
    fn false_sharing_at_16_byte_granularity() {
        // Words 0 and 1 share a granule: distinct objects, same
        // 16-byte chunk — the §4.5 false-positive source.
        let a: Arena = Arena::new(2);
        let mut c1 = ThreadCtx::new(ThreadId(1));
        let mut c2 = ThreadCtx::new(ThreadId(2));
        a.write_checked(&mut c1, 0, 1);
        a.write_checked(&mut c2, 1, 2);
        assert_eq!(c2.conflicts, 1, "false sharing detected as a conflict");
    }

    #[test]
    fn policies_are_equivalent_functionally() {
        fn sum<P: AccessPolicy>(a: &Arena, ctx: &mut ThreadCtx) -> u64 {
            for i in 0..16 {
                P::write(a, ctx, i, i as u64);
            }
            (0..16).map(|i| P::read(a, ctx, i)).sum()
        }
        let a: Arena = Arena::new(16);
        let mut ctx = ThreadCtx::new(ThreadId(1));
        let s1 = sum::<Unchecked>(&a, &mut ctx);
        let s2 = sum::<Checked>(&a, &mut ctx);
        assert_eq!(s1, s2);
        assert_eq!(s1, 120);
        assert!(ctx.total_accesses > 0);
    }

    #[test]
    fn cached_policy_matches_checked_verdicts() {
        let a: Arena = Arena::new(16);
        let mut c1 = ThreadCtx::new(ThreadId(1));
        for rep in 0..8 {
            for i in 0..16 {
                a.write_cached(&mut c1, i, rep);
            }
        }
        assert_eq!(c1.conflicts, 0);
        assert_eq!(
            c1.owned_cache.misses,
            16 / GRANULE_WORDS as u64,
            "one fill per granule, every repeat on the fast path"
        );
        // Cross-thread conflict still observed by the slow path.
        let mut c2 = ThreadCtx::new(ThreadId(2));
        a.write_cached(&mut c2, 0, 9);
        assert_eq!(c2.conflicts, 1);
    }

    #[test]
    fn cached_policy_sees_clear_range() {
        let a: Arena = Arena::new(4);
        let mut c1 = ThreadCtx::new(ThreadId(1));
        a.write_cached(&mut c1, 0, 1);
        a.clear_range(0, 4);
        let mut c2 = ThreadCtx::new(ThreadId(2));
        a.write_cached(&mut c2, 0, 2);
        assert_eq!(c2.conflicts, 0);
        // Thread 1's cached ownership was invalidated by the clear:
        // its next access runs the real check and conflicts with the
        // new owner.
        a.write_cached(&mut c1, 0, 3);
        assert_eq!(c1.conflicts, 1);
    }

    #[test]
    fn cached_policy_survives_unrelated_free() {
        // 256 words = 128 granules over the default 64-region table:
        // freeing the low granules must not flush a worker's cached
        // ownership of the high granules (the cached-epoch-thrash
        // worst case per-region epochs exist to fix).
        let a: Arena = Arena::new(256);
        let mut c1 = ThreadCtx::new(ThreadId(1));
        a.write_cached(&mut c1, 255, 1);
        let fills = c1.owned_cache.misses;
        a.clear_range(0, 2); // a distant free
        a.write_cached(&mut c1, 255, 2);
        assert_eq!(c1.conflicts, 0);
        assert_eq!(
            c1.owned_cache.misses, fills,
            "the distant free must not cost a refill"
        );
        // Same trace under the degenerate R = 1 table: the free
        // flushes the cache and the next access refills.
        let a1: Arena = Arena::with_epoch_regions(256, 1);
        let mut d1 = ThreadCtx::new(ThreadId(1));
        a1.write_cached(&mut d1, 255, 1);
        let fills = d1.owned_cache.misses;
        a1.clear_range(0, 2);
        a1.write_cached(&mut d1, 255, 2);
        assert_eq!(d1.conflicts, 0, "verdicts never change");
        assert_eq!(d1.owned_cache.misses, fills + 1, "global epoch refills");
    }

    #[test]
    fn ranged_sweep_data_and_verdicts_match_per_word_loop() {
        // Same payload and shadow outcome through the ranged path as
        // through the word loop; conflicts are per granule.
        let a: Arena = Arena::new(32);
        let b: Arena = Arena::new(32);
        let mut ca = ThreadCtx::new(ThreadId(1));
        let mut cb = ThreadCtx::new(ThreadId(1));
        for i in 0..32 {
            a.write_checked(&mut ca, i, i as u64 * 3);
        }
        b.write_range_checked(&mut cb, 0, 32, |i| i as u64 * 3);
        assert_eq!(ca.conflicts, 0);
        assert_eq!(cb.conflicts, 0);
        let mut sa = 0u64;
        let mut sb = 0u64;
        for i in 0..32 {
            sa += a.read_checked(&mut ca, i);
        }
        b.read_range_checked(&mut cb, 0, 32, |i, v| {
            assert_eq!(v, i as u64 * 3);
            sb += v;
        });
        assert_eq!(sa, sb);
        assert_eq!(ca.checked_accesses, cb.checked_accesses);
        // Both record ownership of the same granules.
        let mut la = ca.access_log.clone();
        la.sort_unstable();
        let mut lb = cb.access_log.clone();
        lb.sort_unstable();
        assert_eq!(la, lb);
    }

    #[test]
    fn ranged_sweep_counts_conflicting_granules_once() {
        let a: Arena = Arena::new(8);
        let mut intruder = ThreadCtx::new(ThreadId(2));
        a.write_checked(&mut intruder, 2, 9); // owns granule 1
        let mut ctx = ThreadCtx::new(ThreadId(1));
        a.write_range_checked(&mut ctx, 0, 8, |_| 0);
        assert_eq!(ctx.conflicts, 1, "granule 1 conflicts exactly once");
        // The per-word loop reports it once per word instead.
        let mut ctx2 = ThreadCtx::new(ThreadId(3));
        for i in 0..8 {
            a.write_checked(&mut ctx2, i, 0);
        }
        assert!(ctx2.conflicts >= 2, "per-word re-reports the granule");
    }

    #[test]
    fn cached_ranged_repeat_sweep_skips_the_shadow() {
        let a: Arena = Arena::new(256);
        let mut ctx = ThreadCtx::new(ThreadId(1));
        a.write_range_cached(&mut ctx, 0, 256, |i| i as u64);
        let fills = ctx.owned_cache.misses;
        for rep in 0..20 {
            a.write_range_cached(&mut ctx, 0, 256, |i| i as u64 + rep);
            let mut sum = 0u64;
            a.read_range_cached(&mut ctx, 0, 256, |_, v| sum += v);
        }
        assert_eq!(ctx.conflicts, 0);
        assert_eq!(
            ctx.owned_cache.misses, fills,
            "every repeat sweep is one run-stamp compare"
        );
        // A free inside the buffer invalidates the run; the next
        // sweep refills and still sees the new owner's conflict.
        a.clear_range(4, 2);
        let mut thief = ThreadCtx::new(ThreadId(2));
        a.write_checked(&mut thief, 4, 1);
        a.write_range_cached(&mut ctx, 0, 256, |i| i as u64);
        assert_eq!(ctx.conflicts, 1, "stale run cannot hide the thief");
    }

    #[test]
    fn ranged_policies_agree_with_per_word_policies() {
        fn sweep<P: AccessPolicy>(a: &Arena, ctx: &mut ThreadCtx) -> u64 {
            P::write_range(a, ctx, 0, 16, &mut |i| i as u64);
            let mut sum = 0;
            P::read_range(a, ctx, 0, 16, &mut |_, v| sum += v);
            sum
        }
        let a: Arena = Arena::new(16);
        let mut ctx = ThreadCtx::new(ThreadId(1));
        assert_eq!(sweep::<Unchecked>(&a, &mut ctx), 120);
        assert_eq!(sweep::<Checked>(&a, &mut ctx), 120);
        assert_eq!(sweep::<CachedChecked>(&a, &mut ctx), 120);
        assert_eq!(ctx.conflicts, 0);
        assert_eq!(ctx.total_accesses, 96);
    }

    #[test]
    fn ranged_sweeps_emit_range_events_that_replay_clean() {
        use crate::events::EventLog;
        use sharc_checker::{replay, BitmapBackend};
        let a: Arena = Arena::new(8);
        let log = Arc::new(EventLog::new());
        let mut ctx = ThreadCtx::with_sink(ThreadId(1), log.clone());
        a.write_range_checked(&mut ctx, 0, 8, |i| i as u64);
        a.read_range_checked(&mut ctx, 0, 8, |_, _| {});
        let evs = log.snapshot();
        assert_eq!(
            evs,
            vec![
                sharc_checker::CheckEvent::RangeWrite {
                    tid: 1,
                    granule: 0,
                    len: 4
                },
                sharc_checker::CheckEvent::RangeRead {
                    tid: 1,
                    granule: 0,
                    len: 4
                },
            ]
        );
        assert!(replay(&evs, &mut BitmapBackend::new()).is_empty());
    }

    #[test]
    fn concurrent_partitioned_checked_access_is_clean() {
        let a: Arc<Arena> = Arc::new(Arena::new(64));
        let mut handles = Vec::new();
        for t in 1..=4u8 {
            let a = Arc::clone(&a);
            handles.push(std::thread::spawn(move || {
                let mut ctx = ThreadCtx::new(ThreadId(t));
                let base = (t as usize - 1) * 16;
                for i in 0..16 {
                    a.write_checked(&mut ctx, base + i, i as u64);
                }
                let c = ctx.conflicts;
                a.thread_exit(&mut ctx);
                c
            }));
        }
        let conflicts: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert_eq!(conflicts, 0);
    }
}
