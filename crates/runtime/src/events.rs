//! The native-execution event spine: real-thread workloads emit the
//! same [`sharc_checker::CheckEvent`] vocabulary the VM's tracer
//! produces, so one *native* execution can be judged by any
//! [`sharc_checker::CheckBackend`] — SharC's own engine, Eraser
//! locksets, vector clocks — exactly like a VM trace.
//!
//! The sink types themselves live in `sharc-checker` now
//! ([`sharc_checker::sink`] and [`sharc_checker::stream`]), next to
//! the backends they feed; this module re-exports them so the
//! runtime's historical paths (`sharc_runtime::EventLog`,
//! `sharc_runtime::events::EventLog`) keep working. The two
//! implementations:
//!
//! * [`EventLog`] — record-then-replay: a mutex-serialized
//!   append-only buffer holding the whole run.
//! * [`StreamingSink`] — online: per-thread bounded rings drained
//!   under an epoch flip, feeding a backend during the run.
//!
//! Access events are emitted *by the arena* whenever a checked
//! access runs with a sink attached to the [`ThreadCtx`]
//! ([`crate::locks::ThreadCtx::with_sink`]); lifecycle events —
//! fork/join, sharing casts, frees — are recorded by the workload
//! code at the point it performs them.

pub use sharc_checker::sink::{recording_tid, EventLog, EventSink};
pub use sharc_checker::stream::{StreamStats, StreamingSink};

#[cfg(doc)]
use crate::locks::ThreadCtx;
