//! The native-execution event spine: real-thread workloads emit the
//! same [`CheckEvent`] vocabulary the VM's tracer produces, so one
//! *native* execution can be replayed through any
//! [`sharc_checker::CheckBackend`] — SharC's own engine, Eraser
//! locksets, vector clocks — exactly like a VM trace. This closes
//! the loop between the Table 1 overhead harness (§5) and the §6.2
//! detector comparison: both now judge the *same* executions through
//! the *same* interface.
//!
//! An [`EventLog`] is a mutex-serialized append-only buffer shared
//! (`Arc`) between the workload's threads. Appending under one lock
//! gives the multi-threaded execution a linearization; for the
//! workloads that use it, every cross-thread hand-off happens under
//! a real lock or a sharing cast, so the linearized trace preserves
//! the synchronization order the detectors reason about.
//!
//! Access events are emitted *by the arena* whenever a checked
//! access runs with a sink attached to the [`ThreadCtx`]
//! ([`crate::locks::ThreadCtx::with_sink`]); lifecycle events —
//! fork/join, sharing casts, frees — are recorded by the workload
//! code at the point it performs them.

use sharc_checker::CheckEvent;
use std::sync::Mutex;

/// A thread-safe, append-only `CheckEvent` buffer.
#[derive(Debug, Default)]
pub struct EventLog {
    inner: Mutex<Vec<CheckEvent>>,
}

impl EventLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one event (linearized under the log's lock).
    #[inline]
    pub fn record(&self, e: CheckEvent) {
        self.inner.lock().expect("event log poisoned").push(e);
    }

    /// Convenience for the arena's access hook.
    #[inline]
    pub fn record_access(&self, tid: u32, granule: usize, is_write: bool) {
        self.record(if is_write {
            CheckEvent::Write { tid, granule }
        } else {
            CheckEvent::Read { tid, granule }
        });
    }

    /// Convenience for the arena's ranged-access hook: one event per
    /// buffer sweep (`len` granules starting at `granule`). Replay
    /// lowers it to per-granule checks, so the recorded trace spells
    /// the same verdicts as `len` individual access events.
    #[inline]
    pub fn record_range(&self, tid: u32, granule: usize, len: usize, is_write: bool) {
        self.record(if is_write {
            CheckEvent::RangeWrite { tid, granule, len }
        } else {
            CheckEvent::RangeRead { tid, granule, len }
        });
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("event log poisoned").len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Clones the events out (the log keeps them).
    pub fn snapshot(&self) -> Vec<CheckEvent> {
        self.inner.lock().expect("event log poisoned").clone()
    }

    /// Drains the events out, leaving the log empty.
    pub fn take(&self) -> Vec<CheckEvent> {
        std::mem::take(&mut *self.inner.lock().expect("event log poisoned"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn records_in_order_single_thread() {
        let log = EventLog::new();
        log.record(CheckEvent::Fork {
            parent: 1,
            child: 2,
        });
        log.record_access(2, 7, true);
        log.record_access(2, 7, false);
        assert_eq!(log.len(), 3);
        let evs = log.snapshot();
        assert_eq!(evs[1], CheckEvent::Write { tid: 2, granule: 7 });
        assert_eq!(evs[2], CheckEvent::Read { tid: 2, granule: 7 });
        assert_eq!(log.take().len(), 3);
        assert!(log.is_empty());
    }

    #[test]
    fn concurrent_appends_all_land() {
        let log = Arc::new(EventLog::new());
        let mut handles = Vec::new();
        for t in 1..=4u32 {
            let log = Arc::clone(&log);
            handles.push(std::thread::spawn(move || {
                for g in 0..100 {
                    log.record_access(t, g, g % 2 == 0);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(log.len(), 400);
    }

    #[test]
    fn native_trace_replays_through_a_backend() {
        use sharc_checker::{replay, BitmapBackend};
        let log = EventLog::new();
        log.record_access(1, 0, true);
        log.record(CheckEvent::SharingCast {
            tid: 1,
            granule: 0,
            refs: 1,
        });
        log.record_access(2, 0, true);
        let mut b = BitmapBackend::new();
        assert!(replay(&log.snapshot(), &mut b).is_empty(), "hand-off ok");
    }
}
