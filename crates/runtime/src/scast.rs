//! The sharing-cast protocol (paper Fig. 7):
//!
//! ```c
//! void *scast(void *src, void **slot) {
//!     *slot = NULL;
//!     if (refcount(src) > 1) error();
//!     return src;
//! }
//! ```
//!
//! The source slot is nulled first (removing the reference with the
//! old type), then the reference count is consulted; any remaining
//! reference means the object is still reachable under the old
//! sharing mode and the cast must fail.

use crate::rc::{ObjId, RcScheme};

/// A failed `oneref` check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScastError {
    pub obj: ObjId,
    /// References remaining *after* the source was nulled.
    pub remaining: i64,
}

impl std::fmt::Display for ScastError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "sharing cast failed: object {} still has {} other reference(s)",
            self.obj.0, self.remaining
        )
    }
}

impl std::error::Error for ScastError {}

/// Performs a sharing cast of the object referenced by `slot`.
///
/// Nulls `slot` and checks that no other reference to the object
/// remains. On success the caller owns the object under its new
/// sharing mode and should clear its reader/writer shadow state
/// (past accesses no longer constitute sharing).
///
/// Returns `Ok(None)` when the slot was already null (casting a null
/// pointer is a no-op, as in C).
///
/// # Errors
///
/// [`ScastError`] when other references exist; the slot remains
/// nulled (matching the C procedure, which nulls before checking).
pub fn sharing_cast<R: RcScheme + ?Sized>(
    rc: &R,
    mutator: usize,
    slot: usize,
) -> Result<Option<ObjId>, ScastError> {
    let Some(obj) = rc.read_slot(slot) else {
        return Ok(None);
    };
    rc.store(mutator, slot, None);
    let remaining = rc.refcount(obj);
    if remaining > 0 {
        return Err(ScastError { obj, remaining });
    }
    Ok(Some(obj))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rc::{LpRc, NaiveRc};

    fn unique_ref_succeeds(rc: &dyn RcScheme) {
        rc.store(0, 0, Some(ObjId(3)));
        let got = sharing_cast(rc, 0, 0).unwrap();
        assert_eq!(got, Some(ObjId(3)));
        assert_eq!(rc.read_slot(0), None, "source is nulled");
    }

    fn second_ref_fails(rc: &dyn RcScheme) {
        rc.store(0, 0, Some(ObjId(3)));
        rc.store(0, 1, Some(ObjId(3)));
        let err = sharing_cast(rc, 0, 0).unwrap_err();
        assert_eq!(err.obj, ObjId(3));
        assert_eq!(err.remaining, 1);
        assert_eq!(rc.read_slot(0), None, "source nulled even on failure");
    }

    #[test]
    fn naive_unique_succeeds() {
        unique_ref_succeeds(&NaiveRc::new(4, 8));
    }

    #[test]
    fn naive_second_ref_fails() {
        second_ref_fails(&NaiveRc::new(4, 8));
    }

    #[test]
    fn lp_unique_succeeds() {
        unique_ref_succeeds(&LpRc::new(4, 8, 1));
    }

    #[test]
    fn lp_second_ref_fails() {
        second_ref_fails(&LpRc::new(4, 8, 1));
    }

    #[test]
    fn null_slot_is_noop() {
        let rc = NaiveRc::new(2, 2);
        assert_eq!(sharing_cast(&rc, 0, 0).unwrap(), None);
    }

    #[test]
    fn cast_then_reuse() {
        // Ownership transfer: producer casts away, consumer takes the
        // object into a new slot, casts it back.
        let rc = NaiveRc::new(4, 4);
        rc.store(0, 0, Some(ObjId(1)));
        let obj = sharing_cast(&rc, 0, 0).unwrap().unwrap();
        rc.store(1, 2, Some(obj));
        let back = sharing_cast(&rc, 1, 2).unwrap().unwrap();
        assert_eq!(back, ObjId(1));
    }
}
