//! Barrier-schedule stress for the sharded revalidation protocol
//! (`ShardedShadow`) under *real* interleavings.
//!
//! The unit tests in `sharded.rs` pin the protocol's logic; the
//! `forall!` differentials pin its verdicts against the other
//! engines on sequential traces. What neither covers is the window
//! the revalidation step exists for: two threads in *different
//! shards* installing into disjoint shadow words at the same
//! instant, where neither CAS observes the other. These tests drive
//! a full roster through that window thousands of times using
//! [`sharc_testkit::BarrierSchedule`] — every participant is
//! barrier-aligned immediately before the contended check and
//! jittered by a few seeded spins so the interleaving varies by
//! round — and assert the paper-level guarantee:
//!
//! > **A racing conflict is reported by at least one participant.**
//!
//! Not "by every participant" (the winner of the install race
//! legitimately sees no conflict) and not "by a specific one" (that
//! is scheduling), but never zero: SeqCst ordering across the
//! shard words means at least one revalidation observes the other
//! install.
//!
//! The fenced-clear test covers the other half of the protocol: a
//! clear bumps the region epoch, so per-thread owned caches must
//! revalidate through the full sharded slow path — and doing so must
//! produce *no* false reports when the accesses themselves are
//! private.

use sharc_checker::{OwnedCache, ShadowGeometry};
use sharc_runtime::{ShardedShadow, WideThreadId};
use sharc_testkit::sync::Mutex;
use sharc_testkit::BarrierSchedule;

/// Tids chosen to span shards under `for_threads(256)` (5 shards of
/// 63): shard 0, 1, 2, 3.
const CROSS_SHARD_TIDS: [u32; 4] = [1, 70, 140, 200];

const ROUNDS: usize = 400;

fn wide(granules: usize) -> ShardedShadow {
    ShardedShadow::with_geometry(granules, ShadowGeometry::for_threads(256))
}

#[test]
fn racing_cross_shard_writers_are_reported_at_least_once_per_round() {
    let shadow = wide(ROUNDS);
    let sched = BarrierSchedule::new(CROSS_SHARD_TIDS.len(), ROUNDS);
    // Each round races all four writers on a fresh granule (so no
    // round inherits state from the last).
    let out = sched.run(|ctx| {
        let tid = WideThreadId(CROSS_SHARD_TIDS[ctx.thread]);
        ctx.stagger(200);
        shadow.check_write(ctx.round, tid).is_err()
    });
    for (r, row) in out.iter().enumerate() {
        let conflicts = row.iter().filter(|&&c| c).count();
        assert!(
            conflicts >= 1,
            "round {r}: {} cross-shard writers raced one granule and \
             nobody reported",
            row.len()
        );
    }
}

#[test]
fn racing_cross_shard_readers_and_writer_are_reported_at_least_once() {
    let shadow = wide(ROUNDS);
    let sched = BarrierSchedule::new(CROSS_SHARD_TIDS.len(), ROUNDS);
    // Thread 0 writes; the rest read from other shards. Whoever
    // loses the install race must observe the winner: a writer that
    // finds reader bits, or a reader that finds the writer flag.
    let out = sched.run(|ctx| {
        let tid = WideThreadId(CROSS_SHARD_TIDS[ctx.thread]);
        ctx.stagger(200);
        if ctx.thread == 0 {
            shadow.check_write(ctx.round, tid).is_err()
        } else {
            shadow.check_read(ctx.round, tid).is_err()
        }
    });
    for (r, row) in out.iter().enumerate() {
        let conflicts = row.iter().filter(|&&c| c).count();
        assert!(
            conflicts >= 1,
            "round {r}: a write racing {} cross-shard reads went unreported",
            row.len() - 1
        );
    }
}

#[test]
fn fenced_clears_force_cache_revalidation_without_false_reports() {
    // Each participant owns one granule and re-touches it (cached)
    // every round; between rounds a fenced clear revokes one
    // victim's granule. The victim's next access must revalidate
    // through the sharded slow path — and the whole run must be
    // conflict-free, because every access really is private.
    let n = CROSS_SHARD_TIDS.len();
    let shadow = wide(n);
    let caches: Vec<Mutex<OwnedCache>> = (0..n).map(|_| Mutex::new(OwnedCache::new())).collect();
    let sched = BarrierSchedule::new(n, ROUNDS);
    let out = sched.run(|ctx| {
        let tid = WideThreadId(CROSS_SHARD_TIDS[ctx.thread]);
        let mine = ctx.thread;
        // Phase A: everyone touches their own granule (a cache hit in
        // the steady state).
        let mut cache = caches[mine].lock();
        let a = shadow.check_write_cached(mine, tid, &mut cache).is_err();
        drop(cache);
        ctx.sync();
        // Phase B: participant 0 revokes one victim's granule. The
        // clear is fenced by the surrounding barriers, so it cannot
        // race the accesses — its effect on the epoch table is what
        // is under test, not the boundary ambiguity.
        if ctx.thread == 0 {
            shadow.clear(ctx.round % n);
        }
        ctx.sync();
        // Phase C: everyone touches their granule again. The victim's
        // cache entry is stale (its region epoch moved) and must
        // refill; nobody may report.
        let mut cache = caches[mine].lock();
        let c = shadow.check_write_cached(mine, tid, &mut cache).is_err();
        a || c
    });
    for (r, row) in out.iter().enumerate() {
        assert!(
            row.iter().all(|&c| !c),
            "round {r}: private re-acquisition after a fenced clear \
             was misreported as a conflict"
        );
    }
    // The clears really did reach the caches: every participant was
    // the victim ROUNDS / n times, and each revocation costs at
    // least one slow-path refill (the first fill costs one more).
    for (t, cache) in caches.iter().enumerate() {
        let c = cache.lock();
        assert!(
            c.misses as usize >= ROUNDS / n,
            "participant {t}: {} misses — the fenced clears never \
             invalidated its cache",
            c.misses
        );
        assert!(
            c.flushes >= 1,
            "participant {t}: no stale entry was ever discarded"
        );
    }
}

#[test]
fn wide_server_rounds() {
    // The stunnel geometry, one connection per round: an acceptor in
    // shard 0 initializes a handshake granule, casts it away (a
    // fenced clear), and a worker in *another shard* takes ownership
    // through its owned cache. A second fenced clear models the
    // connection teardown, so the worker's next touch must flush the
    // stale entry and refill through the sharded slow path. The whole
    // hand-off schedule is clean — zero reports — while a deliberate
    // all-writers race on a sibling granule closes every round and
    // must be reported at least once.
    let n = CROSS_SHARD_TIDS.len();
    let shadow = wide(2 * ROUNDS);
    let caches: Vec<Mutex<OwnedCache>> = (0..n).map(|_| Mutex::new(OwnedCache::new())).collect();
    let sched = BarrierSchedule::new(n, ROUNDS);
    let out = sched.run(|ctx| {
        let tid = WideThreadId(CROSS_SHARD_TIDS[ctx.thread]);
        let handshake = 2 * ctx.round;
        let contended = 2 * ctx.round + 1;
        // The acceptor is participant 0; the connection's worker
        // rotates over the cross-shard rest.
        let worker = 1 + ctx.round % (n - 1);
        let mut clean = false;
        // Accept: private init, then the sharing cast.
        if ctx.thread == 0 {
            clean |= shadow.check_write(handshake, tid).is_err();
            shadow.clear(handshake);
        }
        ctx.sync();
        // Hand-off: the worker adopts the granule through its cache.
        if ctx.thread == worker {
            let mut cache = caches[ctx.thread].lock();
            clean |= shadow
                .check_read_cached(handshake, tid, &mut cache)
                .is_err();
            clean |= shadow
                .check_write_cached(handshake, tid, &mut cache)
                .is_err();
        }
        ctx.sync();
        // Teardown: the fenced clear revokes the worker's ownership.
        if ctx.thread == 0 {
            shadow.clear(handshake);
        }
        ctx.sync();
        // Reuse: the worker's cache entry is stale and must refill —
        // still private, still silent.
        if ctx.thread == worker {
            let mut cache = caches[ctx.thread].lock();
            clean |= shadow
                .check_write_cached(handshake, tid, &mut cache)
                .is_err();
        }
        ctx.sync();
        // The racing coda: every participant writes the sibling
        // granule unguarded.
        ctx.stagger(200);
        let raced = shadow.check_write(contended, tid).is_err();
        (clean, raced)
    });
    for (r, row) in out.iter().enumerate() {
        assert!(
            row.iter().all(|&(clean, _)| !clean),
            "round {r}: the fenced hand-off schedule produced a false report"
        );
        let raced = row.iter().filter(|&&(_, raced)| raced).count();
        assert!(
            raced >= 1,
            "round {r}: {} cross-shard writers raced one granule and \
             nobody reported",
            row.len()
        );
    }
    // Cache-economics lower bounds: each worker served ROUNDS / (n-1)
    // connections; every connection costs a fill miss plus a
    // post-teardown flush-and-refill.
    for (t, slot) in caches.iter().enumerate().skip(1) {
        let cache = slot.lock();
        let served = ROUNDS / (n - 1);
        assert!(
            cache.misses as usize >= 2 * served,
            "worker {t}: {} misses for {served} connections — the \
             hand-offs never went through the slow path",
            cache.misses
        );
        assert!(
            cache.flushes as usize >= served,
            "worker {t}: {} flushes for {served} teardowns — stale \
             ownership was never discarded",
            cache.flushes
        );
    }
}
