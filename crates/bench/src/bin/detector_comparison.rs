//! Reproduces the §6.2 comparison: SharC's per-access cost vs
//! Eraser-style lockset monitoring and vector-clock happens-before.
//!
//! "Eraser is able to analyze large real-world programs, but it
//! incurs a 10x-30x runtime overhead... [SharC's] overheads are low
//! enough that our analysis could conceivably be left enabled in
//! production systems."
//!
//! Two experiments:
//!
//! 1. **Overhead** — a memory-scan workload run (a) uninstrumented,
//!    (b) with SharC's shadow checks on every access, (c) with the
//!    online Eraser detector, (d) with the online vector-clock
//!    detector. Expected shape: SharC ≪ Eraser/VC.
//! 2. **Precision** — the ownership-transfer hand-off trace: SharC
//!    accepts it (the sharing cast models the transfer); both
//!    baselines report a false positive.
//!
//! ```text
//! cargo run -p sharc-bench --release --bin detector_comparison [-- --quick]
//! ```

use sharc_bench::{
    handoff_trace, scan_workload_baseline, scan_workload_detector, scan_workload_sharc,
    timed_replay,
};
use sharc_checker::{BitmapBackend, CheckBackend};
use sharc_detectors::{BaselineBackend, Detector, Eraser, Online, VcDetector};
use sharc_interp::{compile_and_run, VmConfig};
use sharc_runtime::{Arena, Checked};
use std::sync::Arc;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = 4;
    let words = 4096;
    let passes = if quick { 20 } else { 400 };

    println!("== Overhead: {threads} threads x {words} words x {passes} passes ==\n");
    let (base, c0) = scan_workload_baseline(threads, words, passes);
    let (sharc, c1) = {
        let arena: Arc<Arena> = Arc::new(Arena::new(threads * words));
        scan_workload_sharc::<Checked>(arena, threads, words, passes)
    };
    let (eraser, c2) = {
        let d: Arc<Online<Eraser>> = Arc::new(Online::new());
        scan_workload_detector(d, threads, words, passes)
    };
    let (vc, c3) = {
        let d: Arc<Online<VcDetector>> = Arc::new(Online::new());
        scan_workload_detector(d, threads, words, passes)
    };
    assert!(c0 == c1 && c0 == c2 && c0 == c3, "checksum mismatch");
    let x = |d: std::time::Duration| d.as_secs_f64() / base.as_secs_f64();
    println!("{:<22} {:>12} {:>8}", "monitor", "time", "slowdown");
    println!("{:<22} {:>12.2?} {:>7.2}x", "none (orig)", base, 1.0);
    println!(
        "{:<22} {:>12.2?} {:>7.2}x",
        "SharC shadow checks",
        sharc,
        x(sharc)
    );
    println!(
        "{:<22} {:>12.2?} {:>7.2}x",
        "Eraser lockset",
        eraser,
        x(eraser)
    );
    println!("{:<22} {:>12.2?} {:>7.2}x", "vector clocks", vc, x(vc));
    println!("\npaper shape: Eraser-class full monitoring 10x-30x; SharC 2-14%.");

    println!("\n== Precision: ownership hand-off (producer -> consumer) ==\n");
    let trace = handoff_trace(50);
    let eraser_fp = Eraser::new().run(&trace).len();
    let vc_fp = VcDetector::new().run(&trace).len();

    // The same idiom under SharC, as a MiniC program with sharing
    // casts: no reports.
    let src = r#"
        struct chan { mutex m; cond cv; int *locked(m) slot; int racy rounds; };
        void consumer(struct chan * ch) {
            int private * d;
            int got;
            got = 0;
            while (got < 20) {
                mutex_lock(&ch->m);
                while (ch->slot == NULL) cond_wait(&ch->cv, &ch->m);
                d = SCAST(int private *, ch->slot);
                cond_signal(&ch->cv);
                mutex_unlock(&ch->m);
                *d = *d + 1;
                free(d);
                got = got + 1;
            }
        }
        void main() {
            struct chan * ch = new(struct chan);
            int private * buf;
            int i;
            spawn(consumer, ch);
            for (i = 0; i < 20; i++) {
                buf = new(int private);
                *buf = i;
                mutex_lock(&ch->m);
                while (ch->slot) cond_wait(&ch->cv, &ch->m);
                ch->slot = SCAST(int locked(ch->m) *, buf);
                cond_signal(&ch->cv);
                mutex_unlock(&ch->m);
            }
            join_all();
        }
    "#;
    let out = compile_and_run("handoff.c", src, VmConfig::default())
        .expect("hand-off program checks cleanly");
    println!("{:<22} {:>16}", "detector", "false positives");
    println!("{:<22} {:>16}", "SharC (sharing cast)", out.reports.len());
    println!("{:<22} {:>16}", "Eraser lockset", eraser_fp);
    println!("{:<22} {:>16}", "vector clocks", vc_fp);
    println!(
        "\npaper claim: \"our system is the first to attack the root of the\n\
         problem by modeling ownership transfer directly.\""
    );

    // ---- One *native* execution, every engine (the event spine) ----
    //
    // The §2.1 ownership-transfer workload runs once with real
    // threads, recording its CheckEvent trace; then every engine —
    // SharC's bitmap backend, the BaselineBackend adapters, and the
    // sharded Online front-ends — replays the identical sequence
    // through the unified CheckBackend interface.
    println!("\n== One native execution, every engine (CheckBackend replay) ==\n");
    let (nrun, trace) = sharc_workloads::benchmarks::handoff::run_traced(
        &sharc_workloads::benchmarks::handoff::Params::default(),
    );
    println!(
        "native handoff: {} threads, {} checked accesses, {} trace events, \
         {} inline conflicts\n",
        nrun.threads,
        nrun.checked,
        trace.len(),
        nrun.conflicts
    );
    let engines: Vec<(&str, Box<dyn CheckBackend>)> = vec![
        ("SharC bitmap", Box::new(BitmapBackend::new())),
        (
            "Eraser (replay)",
            Box::new(BaselineBackend::new(Eraser::new())),
        ),
        (
            "vector clocks (replay)",
            Box::new(BaselineBackend::new(VcDetector::new())),
        ),
        ("Eraser (online)", Box::new(Online::<Eraser>::new())),
        (
            "vector clocks (online)",
            Box::new(Online::<VcDetector>::new()),
        ),
    ];
    println!("{:<24} {:>12} {:>10}", "engine", "replay time", "conflicts");
    for (name, mut backend) in engines {
        let (d, conflicts) = timed_replay(&trace, backend.as_mut());
        println!("{name:<24} {d:>12.2?} {:>10}", conflicts.len());
    }
    println!(
        "\nexpected shape: SharC engines silent (the cast transfers ownership);\n\
         lockset engines false-positive; happens-before engines accept only\n\
         because the queue lock orders the hand-off."
    );
}
