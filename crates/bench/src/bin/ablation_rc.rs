//! Ablation for §4.3: the cost of maintaining reference counts.
//!
//! "Applying [eager reference counting] directly in SharC implies
//! atomically updating reference counts for all pointer writes. The
//! resulting overhead is unacceptable on current hardware... even
//! with [the which-locations-need-RC] optimization, the runtime
//! overhead is still too high (over 60% in many cases). To reduce
//! this overhead, we adapted Levanoni and Petrank's high performance
//! concurrent reference counting algorithm."
//!
//! Two views:
//!
//! 1. **Wall time** over a pointer-update-heavy workload. Note: the
//!    contention that makes naive counting catastrophic requires
//!    multiple physical cores; on a single-CPU host both schemes
//!    degenerate to instruction counts and look similar.
//! 2. **Operation mix** — hardware-independent. Naive counting does
//!    two read-modify-writes on *shared* count cache lines per store
//!    (cross-core traffic on a real machine). The adapted algorithm's
//!    per-store work is mutator-local; shared-line work happens only
//!    on first-update-per-epoch log entries and at collections, both
//!    of which this harness counts.
//!
//! ```text
//! cargo run -p sharc-bench --release --bin ablation_rc [-- --quick]
//! ```

use sharc_bench::rc_workload;
use sharc_runtime::{LpRc, NaiveRc};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn baseline(threads: usize, stores: usize, slots_per_thread: usize) -> Duration {
    // The same loop with plain (non-barrier) stores.
    let slots: Arc<Vec<std::sync::atomic::AtomicU64>> = Arc::new(
        (0..threads * slots_per_thread)
            .map(|_| std::sync::atomic::AtomicU64::new(0))
            .collect(),
    );
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let slots = Arc::clone(&slots);
            scope.spawn(move || {
                let base = t * slots_per_thread;
                for i in 0..stores {
                    let slot = base + (i * 7 + 3) % slots_per_thread;
                    slots[slot].store(
                        (i * 13 + t * 31) as u64,
                        std::sync::atomic::Ordering::Release,
                    );
                }
            });
        }
    });
    start.elapsed()
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let stores = if quick { 50_000 } else { 1_000_000 };
    let slots_per_thread = 1024;
    // Few hot objects: the shared-queue pattern SharC instruments.
    let n_objs = 8;
    let casts_every = 10_000;

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!(
        "RC ablation: {stores} pointer stores/thread over {n_objs} hot objects, \
         oneref query every {casts_every} (host has {cores} CPU(s))\n"
    );

    println!("-- wall time --");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>10} {:>10}",
        "threads", "baseline", "naive", "lp", "naive +%", "lp +%"
    );
    for threads in [1usize, 2, 4, 8] {
        let base = baseline(threads, stores, slots_per_thread);
        let naive = {
            let rc = Arc::new(NaiveRc::new(threads * slots_per_thread, n_objs));
            rc_workload(rc, threads, stores, slots_per_thread, n_objs, casts_every)
        };
        let lp_rc = Arc::new(LpRc::new(threads * slots_per_thread, n_objs, threads));
        let lp = rc_workload(
            Arc::clone(&lp_rc),
            threads,
            stores,
            slots_per_thread,
            n_objs,
            casts_every,
        );
        let pct = |d: Duration| (d.as_secs_f64() / base.as_secs_f64() - 1.0) * 100.0;
        println!(
            "{:<8} {:>12.2?} {:>12.2?} {:>12.2?} {:>+9.0}% {:>+9.0}%",
            threads,
            base,
            naive,
            lp,
            pct(naive),
            pct(lp)
        );
    }

    println!("\n-- operation mix (hardware-independent) --");
    println!(
        "{:<8} {:>22} {:>22} {:>12}",
        "threads", "naive shared RMWs", "lp shared-line work", "lp collects"
    );
    for threads in [1usize, 2, 4, 8] {
        let total_stores = (threads * stores) as u64;
        let lp_rc = Arc::new(LpRc::new(threads * slots_per_thread, n_objs, threads));
        let _ = rc_workload(
            Arc::clone(&lp_rc),
            threads,
            stores,
            slots_per_thread,
            n_objs,
            casts_every,
        );
        let stats = lp_rc.stats();
        println!(
            "{:<8} {:>14} (2.00/st) {:>12} ({:.4}/st) {:>12}",
            threads,
            2 * total_stores,
            stats.logged_entries,
            stats.logged_entries as f64 / total_stores as f64,
            stats.collects
        );
    }
    println!(
        "\nShape: naive counting pays two shared-cache-line RMWs on every\n\
         pointer store (the >60% the paper measured on multicore hardware);\n\
         the adapted Levanoni-Petrank scheme logs a slot only on its first\n\
         update per epoch — orders of magnitude fewer shared-line touches —\n\
         which is what makes leaving reference counting enabled affordable."
    );
}
