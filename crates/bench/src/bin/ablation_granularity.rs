//! Ablation for §4.5: race-report precision vs shadow granularity.
//!
//! "Since we track races at a 16-byte granularity, races may be
//! reported for two separate objects that are close together, but
//! used in a non-racy way. To alleviate this problem, SharC ensures
//! that malloc allocates objects on a 16-byte boundary."
//!
//! The harness runs a MiniC program where two threads write adjacent
//! small fields of one struct (the custom-allocator pattern SharC
//! cannot realign) under granule sizes from 1 to 4 cells, reporting
//! the false-positive count and the shadow-memory cost at each
//! setting.
//!
//! ```text
//! cargo run -p sharc-bench --release --bin ablation_granularity
//! ```

use sharc_interp::{compile_and_run, VmConfig};

const SRC: &str = "
struct packed {
    int a;
    int b;
    int c;
    int d;
};
void w0(struct packed * p) { int i; for (i = 0; i < 50; i++) p->a = i; }
void w1(struct packed * p) { int i; for (i = 0; i < 50; i++) p->b = i; }
void w2(struct packed * p) { int i; for (i = 0; i < 50; i++) p->c = i; }
void w3(struct packed * p) { int i; for (i = 0; i < 50; i++) p->d = i; }
void main() {
    struct packed * p = new(struct packed);
    spawn(w0, p);
    spawn(w1, p);
    spawn(w2, p);
    spawn(w3, p);
    join_all();
}
";

fn main() {
    println!("Granularity ablation: 4 threads writing adjacent fields of one struct");
    println!("(fields are used in a non-racy way; every report is a false positive)\n");
    println!(
        "{:>16} {:>16} {:>16} {:>18}",
        "granule (cells)", "granule (bytes)", "false positives", "shadow granules"
    );
    for granule in [1u32, 2, 4] {
        let mut total_reports = 0usize;
        let mut shadow = 0u64;
        let seeds = [1u64, 2, 3, 4, 5];
        for &seed in &seeds {
            let out = compile_and_run(
                "packed.c",
                SRC,
                VmConfig {
                    granule,
                    seed,
                    ..VmConfig::default()
                },
            )
            .expect("program checks cleanly");
            total_reports += out.reports.len();
            shadow = out.stats.shadow_granules;
        }
        println!(
            "{:>16} {:>16} {:>16.1} {:>18}",
            granule,
            granule * 8,
            total_reports as f64 / seeds.len() as f64,
            shadow
        );
    }
    println!(
        "\nShape: at 1 cell/granule the fields are independent (no false\n\
         positives, most shadow memory); at the paper's 16 bytes (2 cells)\n\
         and above, adjacent single-word objects share shadow state and\n\
         non-races get reported — why SharC 16-byte-aligns malloc."
    );
}
