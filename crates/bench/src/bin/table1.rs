//! Regenerates the paper's **Table 1**: the six benchmarks with
//! thread counts, MiniC port sizes, annotation counts, sharing-cast
//! counts, time overhead (orig vs SharC), memory overhead, and the
//! fraction of dynamic-mode accesses.
//!
//! ```text
//! cargo run -p sharc-bench --release --bin table1 [-- --quick] [--reps N] [--json]
//! ```
//!
//! `--smoke` is an alias of `--quick` for CI pipelines. JSON output
//! is emitted with the sharc-testkit hand-rolled serializer (no
//! serde).
//!
//! The paper averaged 50 runs on a 2 GHz dual-core Xeon; pass
//! `--reps 50` for the same protocol. Shapes to compare against the
//! paper: overhead 2–14% (avg 9.2%) with aget unmeasurable (network
//! bound); memory overhead dominated by dillo's bogus-pointer
//! reference counting; %dynamic highest for pfscan (80%), near zero
//! for pbzip2/fftw/stunnel.

use sharc_testkit::Json;
use sharc_workloads::table::{render_table, run_all, Scale};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick" || a == "--smoke");
    let json = args.iter().any(|a| a == "--json");
    let reps = args
        .iter()
        .position(|a| a == "--reps")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);

    let scale = if quick {
        Scale::quick()
    } else {
        Scale::full(reps)
    };
    let results = run_all(scale);

    if json {
        let rows: Vec<Json> = results
            .iter()
            .map(|r| {
                Json::obj([
                    ("name", Json::Str(r.name.to_string())),
                    ("threads", Json::Int(r.threads as i64)),
                    ("lines", Json::Int(r.lines as i64)),
                    ("annotations", Json::Int(r.annotations as i64)),
                    ("changes", Json::Int(r.changes as i64)),
                    ("time_orig_us", Json::Int(r.time_orig.as_micros() as i64)),
                    ("time_sharc_us", Json::Int(r.time_sharc.as_micros() as i64)),
                    ("time_overhead_pct", Json::Float(r.time_overhead_pct())),
                    ("mem_overhead_pct", Json::Float(r.mem_overhead_pct)),
                    ("dynamic_pct", Json::Float(r.dynamic_fraction * 100.0)),
                    ("conflicts", Json::Int(r.conflicts as i64)),
                    ("checksum_match", Json::Bool(r.checksum_match)),
                ])
            })
            .collect();
        print!("{}", Json::Arr(rows).render());
        return;
    }

    println!("SharC reproduction — Table 1 ({} reps per cell)\n", reps);
    println!("{}", render_table(&results));
    println!("Paper reference rows (for shape comparison):");
    println!("  pfscan : 3 thr, 12% time, 0.8% mem, 80.0% dynamic");
    println!("  aget   : 3 thr, n/a (network bound), 30.8% mem, 8.7% dynamic");
    println!("  pbzip2 : 5 thr, 11% time, 1.6% mem, ~0.0% dynamic");
    println!("  dillo  : 4 thr, 14% time, 78.8% mem, 31.7% dynamic");
    println!("  fftw   : 3 thr,  7% time, 1.2% mem, 0.2% dynamic");
    println!("  stunnel: 3 thr,  2% time, 43.5% mem, ~0.0% dynamic");
    let total_annots: usize = results.iter().map(|r| r.annotations).sum();
    let total_changes: usize = results.iter().map(|r| r.changes).sum();
    println!(
        "\nTotals: {total_annots} annotations, {total_changes} sharing casts \
         (paper: 60 annotations, 122 other changes over 600k lines)"
    );

    // Event-spine cross-check: the same kind of native execution the
    // table timed, replayed through the unified CheckBackend
    // interface (SharC's own engine and an online lockset monitor
    // judge one identical run).
    use sharc_workloads::benchmarks::pfscan;
    let log = std::sync::Arc::new(sharc_checker::EventLog::new());
    let _ = pfscan::run_with_events(&pfscan::Params::scaled(Scale::quick()), log.clone());
    let trace = log.snapshot();
    let mut sharc = sharc_checker::BitmapBackend::new();
    let n_sharc = sharc_checker::replay(&trace, &mut sharc).len();
    let mut online: sharc_detectors::Online<sharc_detectors::Eraser> =
        sharc_detectors::Online::new();
    let n_online = sharc_checker::replay(&trace, &mut online).len();
    println!(
        "\nEvent spine: one native pfscan run ({} events) replayed through \
         CheckBackend — sharc: {n_sharc} conflicts, online eraser: {n_online}.",
        trace.len()
    );
    // Who paid for the recording: per-thread append counts on the
    // shared log, and how often an append found the log lock busy.
    let appends: Vec<String> = log
        .append_counts()
        .iter()
        .map(|(tid, n)| format!("t{tid}: {n}"))
        .collect();
    println!(
        "Event log appends by recording thread: {} ({} contended).",
        appends.join(", "),
        log.contended_appends()
    );

    // In smoke mode also regenerate the repo-root `BENCH_checker.json`
    // (the epoch-geometry rows plus exact flush/miss counters) and
    // enforce the region-vs-global win, so the CI pipeline records
    // the bench trajectory without a separate `cargo bench` step.
    if quick {
        let mut b = sharc_testkit::Bench::new("checker");
        b.sample_size(5);
        let counters = sharc_bench::epoch_rows(&mut b);
        let stunnel = sharc_bench::stunnel_rows(&mut b, true);
        let online = sharc_bench::online_rows(&mut b, true);
        sharc_bench::elision_vm_rows(&mut b);
        let elision = sharc_bench::elision_rows();
        b.sample_size(3);
        let trace = vec![sharc_bench::trace_replay_rows(&mut b, true)];
        sharc_bench::write_checker_json_at_repo_root(
            &b, &counters, &stunnel, &online, &elision, &trace,
        );
        sharc_bench::assert_epoch_wins(&b);
        sharc_bench::assert_online_bounds(&b, &online);
        sharc_bench::assert_elision_wins(&b);
        sharc_bench::assert_trace_wins(&b, &trace[0]);
        sharc_bench::assert_parallel_replay_wins(&b, &trace[0]);
    }
}
