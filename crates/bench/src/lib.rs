//! # sharc-bench
//!
//! Shared workloads for the benchmark harnesses that regenerate the
//! paper's table and the ablations DESIGN.md calls out:
//!
//! * `table1` — the six-benchmark evaluation table (§5, Table 1);
//! * `ablation_rc` — naive atomic RC vs the adapted Levanoni–Petrank
//!   counter (§4.3's ">60% overhead" claim);
//! * `ablation_granularity` — false-sharing false positives vs shadow
//!   granularity (§4.5);
//! * `detector_comparison` — SharC's checks vs Eraser-lockset and
//!   vector-clock monitoring of *every* access (§6.2's 10×–30×).

use sharc_checker::{replay, CheckBackend, CheckEvent, Conflict};
use sharc_detectors::{Detector, Event, Online};
use sharc_runtime::{AccessPolicy, Arena, ObjId, RcScheme, ThreadCtx, ThreadId};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A pointer-update-heavy workload for the RC ablation: `threads`
/// workers each perform `stores` slot updates over a private slot
/// range but a shared object set (count contention), plus one
/// `refcount` query per `casts_every` stores (the scast pattern).
pub fn rc_workload<R: RcScheme + 'static>(
    rc: Arc<R>,
    threads: usize,
    stores: usize,
    slots_per_thread: usize,
    n_objs: usize,
    casts_every: usize,
) -> Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let rc = Arc::clone(&rc);
            scope.spawn(move || {
                let base = t * slots_per_thread;
                for i in 0..stores {
                    let slot = base + (i * 7 + 3) % slots_per_thread;
                    let obj = ObjId(((i * 13 + t * 31) % n_objs) as u32);
                    rc.store(t, slot, Some(obj));
                    if casts_every > 0 && i % casts_every == casts_every - 1 {
                        let _ = rc.refcount(obj);
                    }
                }
            });
        }
    });
    start.elapsed()
}

/// The memory-scan workload used for detector comparison: `threads`
/// workers sum disjoint regions of shared memory, every access
/// monitored. Returns (elapsed, sum-checksum).
pub fn scan_workload_sharc<P: AccessPolicy>(
    arena: Arc<Arena>,
    threads: usize,
    words_per_thread: usize,
    passes: usize,
) -> (Duration, u64) {
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let arena = Arc::clone(&arena);
        handles.push(std::thread::spawn(move || {
            let mut ctx = ThreadCtx::new(ThreadId(t as u8 + 1));
            let base = t * words_per_thread;
            let mut sum = 0u64;
            for _ in 0..passes {
                for i in 0..words_per_thread {
                    P::write(&arena, &mut ctx, base + i, (i as u64) ^ sum);
                    sum = sum.wrapping_add(P::read(&arena, &mut ctx, base + i));
                }
            }
            arena.thread_exit(&mut ctx);
            sum
        }));
    }
    let mut checksum = 0u64;
    for h in handles {
        checksum = checksum.wrapping_add(h.join().expect("worker"));
    }
    (start.elapsed(), checksum)
}

/// The same scan monitored by a trace detector on *every* access
/// (how Eraser-class tools work).
pub fn scan_workload_detector<D: Detector + Default + Send + 'static>(
    detector: Arc<Online<D>>,
    threads: usize,
    words_per_thread: usize,
    passes: usize,
) -> (Duration, u64) {
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let d = Arc::clone(&detector);
        handles.push(std::thread::spawn(move || {
            let tid = t as u32 + 1;
            let base = t * words_per_thread;
            let mut mem = vec![0u64; words_per_thread];
            let mut sum = 0u64;
            for _ in 0..passes {
                for (i, cell) in mem.iter_mut().enumerate() {
                    d.write(tid, base + i);
                    *cell = (i as u64) ^ sum;
                    d.read(tid, base + i);
                    sum = sum.wrapping_add(*cell);
                }
            }
            sum
        }));
    }
    let mut checksum = 0u64;
    for h in handles {
        checksum = checksum.wrapping_add(h.join().expect("worker"));
    }
    (start.elapsed(), checksum)
}

/// Uninstrumented baseline of the same scan.
pub fn scan_workload_baseline(
    threads: usize,
    words_per_thread: usize,
    passes: usize,
) -> (Duration, u64) {
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        handles.push(std::thread::spawn(move || {
            let mut mem = vec![0u64; words_per_thread];
            let mut sum = 0u64;
            for _ in 0..passes {
                for (i, cell) in mem.iter_mut().enumerate() {
                    *cell = (i as u64) ^ sum;
                    sum = sum.wrapping_add(std::hint::black_box(*cell));
                }
            }
            let _ = t;
            sum
        }));
    }
    let mut checksum = 0u64;
    for h in handles {
        checksum = checksum.wrapping_add(h.join().expect("worker"));
    }
    (start.elapsed(), checksum)
}

/// Replays one recorded native execution through `backend`, timing
/// the replay. This is how the harnesses judge a *single* native run
/// with every engine: the workload executes once (recording its
/// [`CheckEvent`] trace), then each [`CheckBackend`] — SharC's
/// bitmap, the [`sharc_detectors::BaselineBackend`] adapters, or the
/// sharded [`Online`] front-ends — replays the identical event
/// sequence.
pub fn timed_replay(
    trace: &[CheckEvent],
    backend: &mut dyn CheckBackend,
) -> (Duration, Vec<Conflict>) {
    let start = Instant::now();
    let conflicts = replay(trace, backend);
    (start.elapsed(), conflicts)
}

/// An ownership-transfer trace (producer/consumer via two locks):
/// legal under SharC's sharing casts, a false positive for the
/// baselines.
pub fn handoff_trace(rounds: usize) -> Vec<Event> {
    let mut t = vec![Event::Fork { tid: 1, child: 2 }];
    for r in 0..rounds {
        let loc = r % 8;
        t.push(Event::Acquire { tid: 1, lock: 1 });
        t.push(Event::Write { tid: 1, loc });
        t.push(Event::Release { tid: 1, lock: 1 });
        t.push(Event::Acquire { tid: 2, lock: 2 });
        t.push(Event::Write { tid: 2, loc });
        t.push(Event::Release { tid: 2, lock: 2 });
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharc_runtime::{Checked, LpRc, NaiveRc, Unchecked};

    #[test]
    fn rc_workload_runs_both_schemes() {
        let naive = Arc::new(NaiveRc::new(64, 16));
        let lp = Arc::new(LpRc::new(64, 16, 2));
        let d1 = rc_workload(naive, 2, 500, 32, 16, 50);
        let d2 = rc_workload(lp, 2, 500, 32, 16, 50);
        assert!(d1 > Duration::ZERO && d2 > Duration::ZERO);
    }

    #[test]
    fn scan_checksums_agree() {
        let a1: Arc<Arena> = Arc::new(Arena::new(64));
        let a2: Arc<Arena> = Arc::new(Arena::new(64));
        let (_, c1) = scan_workload_sharc::<Unchecked>(a1, 2, 32, 3);
        let (_, c2) = scan_workload_sharc::<Checked>(a2, 2, 32, 3);
        let (_, c3) = scan_workload_baseline(2, 32, 3);
        assert_eq!(c1, c2);
        assert_eq!(c1, c3);
    }

    #[test]
    fn handoff_trace_is_false_positive_for_baselines() {
        use sharc_detectors::{Eraser, VcDetector};
        let trace = handoff_trace(10);
        assert!(!Eraser::new().run(&trace).is_empty());
        assert!(!VcDetector::new().run(&trace).is_empty());
    }
}
