//! # sharc-bench
//!
//! Shared workloads for the benchmark harnesses that regenerate the
//! paper's table and the ablations DESIGN.md calls out:
//!
//! * `table1` — the six-benchmark evaluation table (§5, Table 1);
//! * `ablation_rc` — naive atomic RC vs the adapted Levanoni–Petrank
//!   counter (§4.3's ">60% overhead" claim);
//! * `ablation_granularity` — false-sharing false positives vs shadow
//!   granularity (§4.5);
//! * `detector_comparison` — SharC's checks vs Eraser-lockset and
//!   vector-clock monitoring of *every* access (§6.2's 10×–30×).

use sharc_checker::{replay, CheckBackend, CheckEvent, Conflict, OwnedCache};
use sharc_detectors::{Detector, Event, Online};
use sharc_runtime::{AccessPolicy, Arena, ObjId, RcScheme, Shadow, ThreadCtx, ThreadId};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A pointer-update-heavy workload for the RC ablation: `threads`
/// workers each perform `stores` slot updates over a private slot
/// range but a shared object set (count contention), plus one
/// `refcount` query per `casts_every` stores (the scast pattern).
pub fn rc_workload<R: RcScheme + 'static>(
    rc: Arc<R>,
    threads: usize,
    stores: usize,
    slots_per_thread: usize,
    n_objs: usize,
    casts_every: usize,
) -> Duration {
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let rc = Arc::clone(&rc);
            scope.spawn(move || {
                let base = t * slots_per_thread;
                for i in 0..stores {
                    let slot = base + (i * 7 + 3) % slots_per_thread;
                    let obj = ObjId(((i * 13 + t * 31) % n_objs) as u32);
                    rc.store(t, slot, Some(obj));
                    if casts_every > 0 && i % casts_every == casts_every - 1 {
                        let _ = rc.refcount(obj);
                    }
                }
            });
        }
    });
    start.elapsed()
}

/// The memory-scan workload used for detector comparison: `threads`
/// workers sum disjoint regions of shared memory, every access
/// monitored. Returns (elapsed, sum-checksum).
pub fn scan_workload_sharc<P: AccessPolicy>(
    arena: Arc<Arena>,
    threads: usize,
    words_per_thread: usize,
    passes: usize,
) -> (Duration, u64) {
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let arena = Arc::clone(&arena);
        handles.push(std::thread::spawn(move || {
            let mut ctx = ThreadCtx::new(ThreadId(t as u8 + 1));
            let base = t * words_per_thread;
            let mut sum = 0u64;
            for _ in 0..passes {
                for i in 0..words_per_thread {
                    P::write(&arena, &mut ctx, base + i, (i as u64) ^ sum);
                    sum = sum.wrapping_add(P::read(&arena, &mut ctx, base + i));
                }
            }
            arena.thread_exit(&mut ctx);
            sum
        }));
    }
    let mut checksum = 0u64;
    for h in handles {
        checksum = checksum.wrapping_add(h.join().expect("worker"));
    }
    (start.elapsed(), checksum)
}

/// The same scan monitored by a trace detector on *every* access
/// (how Eraser-class tools work).
pub fn scan_workload_detector<D: Detector + Default + Send + 'static>(
    detector: Arc<Online<D>>,
    threads: usize,
    words_per_thread: usize,
    passes: usize,
) -> (Duration, u64) {
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let d = Arc::clone(&detector);
        handles.push(std::thread::spawn(move || {
            let tid = t as u32 + 1;
            let base = t * words_per_thread;
            let mut mem = vec![0u64; words_per_thread];
            let mut sum = 0u64;
            for _ in 0..passes {
                for (i, cell) in mem.iter_mut().enumerate() {
                    d.write(tid, base + i);
                    *cell = (i as u64) ^ sum;
                    d.read(tid, base + i);
                    sum = sum.wrapping_add(*cell);
                }
            }
            sum
        }));
    }
    let mut checksum = 0u64;
    for h in handles {
        checksum = checksum.wrapping_add(h.join().expect("worker"));
    }
    (start.elapsed(), checksum)
}

/// Uninstrumented baseline of the same scan.
pub fn scan_workload_baseline(
    threads: usize,
    words_per_thread: usize,
    passes: usize,
) -> (Duration, u64) {
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        handles.push(std::thread::spawn(move || {
            let mut mem = vec![0u64; words_per_thread];
            let mut sum = 0u64;
            for _ in 0..passes {
                for (i, cell) in mem.iter_mut().enumerate() {
                    *cell = (i as u64) ^ sum;
                    sum = sum.wrapping_add(std::hint::black_box(*cell));
                }
            }
            let _ = t;
            sum
        }));
    }
    let mut checksum = 0u64;
    for h in handles {
        checksum = checksum.wrapping_add(h.join().expect("worker"));
    }
    (start.elapsed(), checksum)
}

/// Replays one recorded native execution through `backend`, timing
/// the replay. This is how the harnesses judge a *single* native run
/// with every engine: the workload executes once (recording its
/// [`CheckEvent`] trace), then each [`CheckBackend`] — SharC's
/// bitmap, the [`sharc_detectors::BaselineBackend`] adapters, or the
/// sharded [`Online`] front-ends — replays the identical event
/// sequence.
pub fn timed_replay(
    trace: &[CheckEvent],
    backend: &mut dyn CheckBackend,
) -> (Duration, Vec<Conflict>) {
    let start = Instant::now();
    let conflicts = replay(trace, backend);
    (start.elapsed(), conflicts)
}

/// An ownership-transfer trace (producer/consumer via two locks):
/// legal under SharC's sharing casts, a false positive for the
/// baselines.
pub fn handoff_trace(rounds: usize) -> Vec<Event> {
    let mut t = vec![Event::Fork { tid: 1, child: 2 }];
    for r in 0..rounds {
        let loc = r % 8;
        t.push(Event::Acquire { tid: 1, lock: 1 });
        t.push(Event::Write { tid: 1, loc });
        t.push(Event::Release { tid: 1, lock: 1 });
        t.push(Event::Acquire { tid: 2, lock: 2 });
        t.push(Event::Write { tid: 2, loc });
        t.push(Event::Release { tid: 2, lock: 2 });
    }
    t
}

// ---- Epoch-geometry rows (benches/checker.rs and `table1 --smoke`) ----

/// Granule count for the `epoch/*` rows: matches the cache's default
/// slot count so every granule is resident in steady state.
pub const EPOCH_GRANULES: usize = 256;

/// Lap count for the deterministic counter pass behind the
/// `counters` section of `BENCH_checker.json`.
pub const EPOCH_COUNTER_LAPS: usize = 10;

/// Exact cache counters for one `epoch/*` row, measured over
/// [`EPOCH_COUNTER_LAPS`] laps on fresh state (independent of the
/// timing sample count, so the JSON is reproducible).
#[derive(Debug, Clone)]
pub struct EpochCounters {
    pub name: &'static str,
    pub flushes: u64,
    pub misses: u64,
}

fn epoch_shadow(global: bool) -> Shadow {
    if global {
        // The R = 1 degenerate geometry: the pre-region behaviour
        // where any clear invalidates every cached entry.
        Shadow::with_epoch_regions(EPOCH_GRANULES, 1)
    } else {
        // The default geometry: 64 regions of 4 granules.
        Shadow::new(EPOCH_GRANULES)
    }
}

/// Steady-state private loop — no clears, so the epoch geometry is
/// irrelevant and both tables must time the same.
fn epoch_lap_private(s: &Shadow, t: ThreadId, cache: &mut OwnedCache) {
    for i in 0..EPOCH_GRANULES {
        s.check_write_cached(i, t, cache).unwrap();
    }
}

/// The ROADMAP's `cached-epoch-thrash` worst case: a point clear per
/// lap. Region table: one region (4 granules) refills. Global table:
/// the whole cache refills through the slow path.
fn epoch_lap_thrash(s: &Shadow, t: ThreadId, cache: &mut OwnedCache) {
    epoch_lap_private(s, t, cache);
    s.clear(0);
}

/// Mixed alloc/free/access: a hot cached upper half plus a churn
/// prefix of alloc-use-free granules (each freed granule's shadow is
/// reset, bumping its region). Clears stay confined to the low
/// regions; the hot half must stay cached under the region table.
fn epoch_lap_mixed(s: &Shadow, t: ThreadId, cache: &mut OwnedCache) {
    for i in EPOCH_GRANULES / 2..EPOCH_GRANULES {
        s.check_write_cached(i, t, cache).unwrap();
    }
    for i in 0..16 {
        s.check_write(i, t).unwrap(); // alloc + use
        s.clear(i); // free
    }
}

/// Benches the six `epoch/*` rows into `g` (region vs global
/// geometry on the private, thrash, and mixed patterns) and returns
/// exact flush/miss counters from a deterministic side pass.
pub fn epoch_rows(g: &mut sharc_testkit::Bench) -> Vec<EpochCounters> {
    type Lap = fn(&Shadow, ThreadId, &mut OwnedCache);
    let rows: [(&'static str, bool, Lap); 6] = [
        ("epoch/region-private", false, epoch_lap_private),
        ("epoch/global-private", true, epoch_lap_private),
        ("epoch/region-thrash", false, epoch_lap_thrash),
        ("epoch/global-thrash", true, epoch_lap_thrash),
        ("epoch/region-mixed", false, epoch_lap_mixed),
        ("epoch/global-mixed", true, epoch_lap_mixed),
    ];
    let t = ThreadId(1);
    let mut counters = Vec::new();
    for (name, global, lap) in rows {
        {
            let s = epoch_shadow(global);
            let mut cache: OwnedCache = OwnedCache::new();
            g.bench(name, || lap(&s, t, &mut cache));
        }
        let s = epoch_shadow(global);
        let mut cache: OwnedCache = OwnedCache::new();
        for _ in 0..EPOCH_COUNTER_LAPS {
            lap(&s, t, &mut cache);
        }
        counters.push(EpochCounters {
            name,
            flushes: cache.flushes,
            misses: cache.misses,
        });
    }
    counters
}

/// The `epoch-geom/r{R}-ws{WS}` grid: region count × working set on
/// the Table 1 access shape the region table exists for — a hot
/// private upper half (pfscan scan buffers, pbzip2 per-worker blocks)
/// plus an alloc-use-free churn prefix whose clears bump epochs.
/// With R = 1 every clear flushes the hot half's entries (the
/// degenerate global epoch); as R grows the churn confines itself to
/// the low regions until, past ~one region per churn granule, extra
/// regions buy nothing — the knee that grounds `DEFAULT_REGIONS =
/// 64`. Rows land in `BENCH_checker.json` with everything else.
pub fn epoch_geometry_rows(g: &mut sharc_testkit::Bench) {
    let t = ThreadId(1);
    for &ws in &[64usize, 256, 1024] {
        for &r in &[1usize, 16, 64, 256] {
            let s: Shadow = Shadow::with_epoch_regions(ws, r);
            let mut cache: OwnedCache = OwnedCache::new();
            let churn = (ws / 16).max(4);
            g.bench(&format!("epoch-geom/r{r}-ws{ws}"), || {
                for i in ws / 2..ws {
                    s.check_write_cached(i, t, &mut cache).unwrap();
                }
                for i in 0..churn {
                    s.check_write(i, t).unwrap(); // alloc + use
                    s.clear(i); // free
                }
            });
        }
    }
}

/// Asserts the epoch-table perf claims: region-epoch ≥2× faster than
/// global-epoch under thrash, and within noise of it on the no-clear
/// private loop. Compared on per-row minima — the loops do constant
/// work, so the fastest sample is the least noise-contaminated one
/// and the comparison stays stable at CI's small sample counts.
pub fn assert_epoch_wins(g: &sharc_testkit::Bench) {
    let row_min = |name: &str| {
        g.results()
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.min_ns)
            .expect("epoch row ran")
    };
    let (rt, gt) = (
        row_min("epoch/region-thrash"),
        row_min("epoch/global-thrash"),
    );
    eprintln!("epoch thrash: region {rt} ns/lap vs global {gt} ns/lap (want >=2x)");
    assert!(
        rt * 2 <= gt,
        "region-epoch must beat global-epoch >=2x under thrash ({rt} * 2 > {gt} ns)"
    );
    let (rp, gp) = (
        row_min("epoch/region-private"),
        row_min("epoch/global-private"),
    );
    eprintln!("epoch private: region {rp} ns/lap vs global {gp} ns/lap (want within noise)");
    // Both laps do identical all-hit work; allow generous slack (2x
    // plus a 2 us floor) so scheduler jitter cannot flake CI, while
    // still catching a geometry-dependent fast-path regression.
    assert!(
        rp <= gp.saturating_mul(2).max(2_000),
        "region-epoch private loop regressed vs global ({rp} ns vs {gp} ns)"
    );
}

/// The ranged-cast acceptance gate on the `cast/*` rows: a block
/// hand-off as ONE `RangeCast` + `clear_range` (one spine record, one
/// epoch bump per covered region) must beat the per-granule
/// `SharingCast` + `clear` loop by >= 4x on 4 KiB blocks, and the win
/// must hold at 64 KiB — the ranged path's per-block overhead (one
/// record, <= R region bumps) does not grow with block length, so a
/// longer block can only widen the gap. Minima, not medians, for the
/// same reason as every other gate here: constant-work loops, least
/// noise-contaminated sample.
pub fn assert_ranged_cast_wins(g: &sharc_testkit::Bench) {
    let row_min = |name: &str| {
        g.results()
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.min_ns)
            .expect("cast row ran")
    };
    for kb in [4u32, 64] {
        let (rng, per) = (
            row_min(&format!("cast/block-{kb}k-ranged")),
            row_min(&format!("cast/block-{kb}k-granule")),
        );
        eprintln!(
            "cast block-{kb}k: ranged {rng} ns/hand-off (min) vs per-granule {per} ns (want >=4x)"
        );
        assert!(
            rng * 4 <= per,
            "ranged {kb}k block hand-off must beat the per-granule cast loop >=4x \
             ({rng} * 4 > {per} ns)"
        );
    }
}

/// A derived throughput record for one wide-fleet stunnel
/// configuration. The timing row itself (median/p95 latency per
/// fleet run) lands in the bench group like every other row; this
/// carries the messages-per-second figure computed from the median
/// so `BENCH_checker.json` states the server-facing number directly.
#[derive(Debug, Clone)]
pub struct StunnelRow {
    /// Bench row name (`stunnel/...`), shared with the timing row.
    pub name: String,
    /// Simulated client connections per run.
    pub clients: usize,
    /// Real worker threads per run.
    pub workers: usize,
    /// Messages per client per run.
    pub messages: usize,
    /// Echoed messages per second, derived from the median run time.
    pub msgs_per_sec: i64,
}

/// Benches the wide-tid stunnel fleet into `g`: the checked/original
/// pair at the fleet shape (throughput plus the harness's p50/p95),
/// then the clients × workers contention sweep — same total client
/// count served by fleets from narrow (everything in shard 0) to
/// wider than two shards, so the sweep prices shard-crossing
/// contention on the session and counter locks. Returns the derived
/// throughput records for the JSON document.
pub fn stunnel_rows(g: &mut sharc_testkit::Bench, smoke: bool) -> Vec<StunnelRow> {
    use sharc_runtime::{WideChecked, WideUnchecked};
    use sharc_workloads::benchmarks::stunnel::{run_native, Params};

    let shape = |clients: usize, workers: usize| Params {
        clients,
        workers,
        messages: 4,
        msg_len: 256,
    };
    // The headline pair: the full fleet, checked vs unchecked.
    let fleet = shape(128, 128);
    let mut specs: Vec<(String, Params, bool)> = vec![
        ("stunnel/fleet-sharc".to_string(), fleet, true),
        ("stunnel/fleet-orig".to_string(), fleet, false),
    ];
    // Contention sweep: clients × worker threads.
    let sweep: &[(usize, usize)] = if smoke {
        &[(64, 16), (64, 64)]
    } else {
        &[(64, 16), (64, 64), (128, 32), (128, 128), (256, 64)]
    };
    for &(c, w) in sweep {
        specs.push((format!("stunnel/sweep-c{c}-w{w}"), shape(c, w), true));
    }

    let mut rows = Vec::new();
    for (name, params, checked) in specs {
        if checked {
            g.bench(&name, || run_native::<WideChecked>(&params));
        } else {
            g.bench(&name, || run_native::<WideUnchecked>(&params));
        }
        let stats = g
            .results()
            .iter()
            .find(|s| s.name == name)
            .expect("stunnel row ran");
        let total_msgs = (params.clients * params.messages) as u128;
        let msgs_per_sec = (total_msgs * 1_000_000_000 / (stats.median_ns as u128).max(1)) as i64;
        eprintln!(
            "{name}: {msgs_per_sec} msgs/s \
             ({} clients x {} msgs over {} workers, median run)",
            params.clients, params.messages, params.workers
        );
        rows.push(StunnelRow {
            name,
            clients: params.clients,
            workers: params.workers,
            messages: params.messages,
            msgs_per_sec,
        });
    }
    rows
}

/// The accounting record of one `online/*` streaming configuration:
/// the bounded-memory pipeline's budget next to what it actually
/// held resident, so `BENCH_checker.json` states the memory claim as
/// numbers and CI can gate on it.
#[derive(Debug, Clone)]
pub struct OnlineRow {
    /// Bench row of the streaming run (`online/<w>-stream`).
    pub stream_row: String,
    /// Bench row of the untraced checked run (`online/<w>-orig`).
    pub untraced_row: String,
    /// Per-thread rings in the sink.
    pub rings: usize,
    /// Events per ring buffer.
    pub ring_cap: usize,
    /// Events the deterministic side pass recorded.
    pub recorded: u64,
    /// Collector drains it took.
    pub drains: u64,
    /// Most events ever resident across all rings.
    pub peak_resident: usize,
    /// The hard bound: `2 * ring_cap * rings`.
    pub ring_budget: usize,
}

/// Benches the `online/*` rows into `g`: for stunnel (fleet shape)
/// and pbzip2, the streaming pipeline — per-thread rings, epoch-flip
/// collector, SharC's bitmap backend judging *during* the run —
/// against the identical untraced checked run. A deterministic side
/// pass per workload captures the stream accounting; ring budgets
/// are deliberately far below each workload's recorded event count,
/// so "peak under budget" means the collector genuinely recycled the
/// rings rather than the trace having fit in them.
pub fn online_rows(g: &mut sharc_testkit::Bench, smoke: bool) -> Vec<OnlineRow> {
    use sharc_checker::{BitmapBackend, ShadowGeometry, StreamingSink};
    use sharc_runtime::WideChecked;
    use sharc_workloads::benchmarks::{pbzip2, stunnel};

    let stunnel_params = stunnel::Params {
        clients: 128,
        workers: 128,
        messages: 4,
        msg_len: 256,
    };
    let pbzip2_params = pbzip2::Params {
        input_size: if smoke { 64 * 1024 } else { 256 * 1024 },
        block: 16 * 1024,
        workers: 3,
    };

    let stunnel_stream = |rings: usize, cap: usize| {
        let geom = ShadowGeometry::for_threads(stunnel_params.workers + 2);
        let sink = Arc::new(StreamingSink::new(
            rings,
            cap,
            Box::new(BitmapBackend::with_geometry(geom)),
        ));
        let run = stunnel::run_with_events(&stunnel_params, sink.clone());
        let (conflicts, stats) = sink.finish();
        assert!(conflicts.is_empty(), "streamed stunnel is clean");
        (run, stats)
    };
    let pbzip2_stream = |rings: usize, cap: usize| {
        let geom = ShadowGeometry::for_threads(pbzip2_params.workers + 2);
        let sink = Arc::new(StreamingSink::new(
            rings,
            cap,
            Box::new(BitmapBackend::with_geometry(geom)),
        ));
        let run = pbzip2::run_with_events(&pbzip2_params, sink.clone());
        let (conflicts, stats) = sink.finish();
        assert!(conflicts.is_empty(), "streamed pbzip2 is clean");
        (run, stats)
    };

    let mut rows = Vec::new();

    // stunnel: 4 rings x 256 events, budget 2048 vs a ~5k-event run.
    let (rings, cap) = (4usize, 256usize);
    g.bench("online/stunnel-stream", || stunnel_stream(rings, cap));
    g.bench("online/stunnel-orig", || {
        stunnel::run_native::<WideChecked>(&stunnel_params)
    });
    let (_, stats) = stunnel_stream(rings, cap);
    rows.push(OnlineRow {
        stream_row: "online/stunnel-stream".to_string(),
        untraced_row: "online/stunnel-orig".to_string(),
        rings,
        ring_cap: cap,
        recorded: stats.recorded,
        drains: stats.drains,
        peak_resident: stats.peak_resident,
        ring_budget: stats.ring_budget,
    });

    // pbzip2: 2 rings x 16 events, budget 64 vs a ~100-event run.
    let (rings, cap) = (2usize, 16usize);
    g.bench("online/pbzip2-stream", || pbzip2_stream(rings, cap));
    g.bench("online/pbzip2-orig", || {
        pbzip2::run_native(&pbzip2_params, true)
    });
    let (_, stats) = pbzip2_stream(rings, cap);
    rows.push(OnlineRow {
        stream_row: "online/pbzip2-stream".to_string(),
        untraced_row: "online/pbzip2-orig".to_string(),
        rings,
        ring_cap: cap,
        recorded: stats.recorded,
        drains: stats.drains,
        peak_resident: stats.peak_resident,
        ring_budget: stats.ring_budget,
    });

    for r in &rows {
        eprintln!(
            "{}: {} events through {} x {} rings, peak resident {} / budget {}, {} drains",
            r.stream_row, r.recorded, r.rings, r.ring_cap, r.peak_resident, r.ring_budget, r.drains
        );
    }
    rows
}

/// Asserts the streaming pipeline's two claims on the `online/*`
/// rows. Memory: peak resident events stay under the ring budget,
/// and the budget itself is a real constraint (the run recorded more
/// events than the rings could ever hold at once). Throughput: the
/// streamed stunnel fleet finishes within 1.25x of the untraced
/// checked run — compared on per-row minima like
/// [`assert_epoch_wins`], with a small absolute floor so scheduler
/// jitter on CI cannot flake the gate.
pub fn assert_online_bounds(g: &sharc_testkit::Bench, rows: &[OnlineRow]) {
    for r in rows {
        assert!(
            r.peak_resident <= r.ring_budget,
            "{}: peak resident {} exceeds ring budget {}",
            r.stream_row,
            r.peak_resident,
            r.ring_budget
        );
        assert!(
            r.recorded > r.ring_budget as u64,
            "{}: budget {} is not binding over {} recorded events",
            r.stream_row,
            r.ring_budget,
            r.recorded
        );
        assert!(
            r.drains >= 2,
            "{}: the collector must actually run mid-stream ({} drains)",
            r.stream_row,
            r.drains
        );
    }
    let row_min = |name: &str| {
        g.results()
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.min_ns)
            .expect("online row ran")
    };
    let (sm, um) = (
        row_min("online/stunnel-stream"),
        row_min("online/stunnel-orig"),
    );
    eprintln!("online stunnel: stream {sm} ns vs untraced {um} ns (want <=1.25x)");
    assert!(
        sm <= um.saturating_mul(5) / 4 + 2_000_000,
        "streamed stunnel exceeded 1.25x of the untraced run ({sm} ns vs {um} ns)"
    );
}

// ---- Static check elision (compiler-side ablation) ----

/// Per-workload accounting of the static check-elision pass: how many
/// check slots the instrumenter requested on the Table 1 MiniC port
/// and how many the escape+lockset pre-analysis deleted before they
/// could become instructions. Lands in `BENCH_checker.json` so the
/// static win is recorded next to the dynamic rows.
#[derive(Debug, Clone)]
pub struct ElisionRow {
    /// Workload name (Table 1 row).
    pub name: &'static str,
    /// Check slots the instrumenter emitted.
    pub checked_slots: usize,
    /// Slots deleted outright (E1–E4).
    pub elided_slots: usize,
    /// Compound-assign read slots folded into their write check (E5).
    pub collapsed_reads: usize,
    /// `elided_slots` as a percentage of `checked_slots`.
    pub elided_pct: f64,
}

/// Compiles each Table 1 workload's MiniC port and reads the elision
/// summary off the checked program — a deterministic, timing-free
/// pass, like the epoch counter pass.
pub fn elision_rows() -> Vec<ElisionRow> {
    use sharc_workloads::benchmarks::{aget, dillo, fftw, pbzip2, pfscan, stunnel};
    let sources: [(&'static str, &'static str); 6] = [
        ("pfscan", pfscan::minic_source()),
        ("aget", aget::minic_source()),
        ("pbzip2", pbzip2::minic_source()),
        ("dillo", dillo::minic_source()),
        ("fftw", fftw::minic_source()),
        ("stunnel", stunnel::minic_source()),
    ];
    sources
        .iter()
        .map(|&(name, src)| {
            let checked =
                sharc_core::compile(&format!("{name}.c"), src).expect("workload port parses");
            assert!(
                !checked.diags.has_errors(),
                "{name} port must check cleanly"
            );
            let s = &checked.elision.summary;
            ElisionRow {
                name,
                checked_slots: s.checked_slots,
                elided_slots: s.elided_slots,
                collapsed_reads: s.collapsed_reads,
                elided_pct: s.elided_pct(),
            }
        })
        .collect()
}

/// The check-dominated private loop the VM cache rows have always
/// used, minus the `print(*p)` tail: a main-side read is one more
/// access to the object, which (soundly) defeats the spawn-unique
/// argument, so the bench program keeps every access inside the one
/// spawned worker.
const ELIDE_SRC: &str = "void worker(int * d) { int i; for (i = 0; i < 3000; i++) \
     { *d = *d + 1; *d = *d + 1; *d = *d + 1; *d = *d + 1; } }\n\
     void main() { int * p; int t; p = new(int); \
     t = spawn(worker, p); join(t); }";

/// Benches the three `vm/private-loop/*` rows: the default (eliding)
/// build against the fully-checked build with the owned cache on and
/// off. Ordering claim on this loop: elided < checked-cached <
/// checked-uncached — each layer removes work the previous one only
/// made cheaper. Returns nothing; the gate is [`assert_elision_wins`].
pub fn elision_vm_rows(g: &mut sharc_testkit::Bench) {
    use sharc_interp::{compile_full_checks, compile_module, run, VmConfig};
    let checked = sharc_core::compile("v.c", ELIDE_SRC).expect("bench source parses");
    assert!(!checked.diags.has_errors(), "bench source checks");
    let elided = compile_module(&checked).expect("elided build compiles");
    let full = compile_full_checks(&checked).expect("full-checks build compiles");
    assert!(
        elided.elision.elided > 0,
        "the private loop's checks must be statically elided"
    );
    assert_eq!(
        full.elision.elided, 0,
        "the reference build keeps every check"
    );
    g.bench("vm/private-loop/elided", || {
        run(&elided, &checked.source_map, VmConfig::default())
    });
    g.bench("vm/private-loop/cache-on", || {
        run(&full, &checked.source_map, VmConfig::default())
    });
    g.bench("vm/private-loop/cache-off", || {
        run(
            &full,
            &checked.source_map,
            VmConfig {
                owned_cache: false,
                ..VmConfig::default()
            },
        )
    });
}

/// The elision acceptance gate: on the check-dominated private loop,
/// the eliding build (no check instructions at all) must beat the
/// fully-checked build even with the PR 5 owned-granule cache turned
/// on — deleting a check statically is cheaper than any way of
/// passing it dynamically. Compared on per-row minima like
/// [`assert_epoch_wins`].
pub fn assert_elision_wins(g: &sharc_testkit::Bench) {
    let row_min = |name: &str| {
        g.results()
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.min_ns)
            .expect("vm private-loop row ran")
    };
    let (e, c) = (
        row_min("vm/private-loop/elided"),
        row_min("vm/private-loop/cache-on"),
    );
    eprintln!("vm private loop: elided {e} ns/run (min) vs checked+cached {c} ns/run");
    assert!(
        e < c,
        "the eliding build must beat the checked+cached build ({e} ns vs {c} ns)"
    );
}

// ---- Binary traces + parallel replay (benches/checker.rs) ----

/// A deterministic spine-shaped trace for the `trace/*` and
/// `replay/*` rows: `threads` workers, each owning a private
/// `granules_per_thread` band (conflict-free for every detector, so
/// replay time measures the fold, not conflict handling), emitting
/// the full event vocabulary at server-fleet ratios — point accesses
/// dominate, with ranges, lock triples, and casts mixed in. The
/// xorshift `seed` makes the trace byte-identical across runs, and
/// one band spans exactly one epoch region at the default geometry,
/// so the parallel partition is balanced by construction.
pub fn synthetic_spine_trace(
    events: usize,
    threads: u32,
    granules_per_thread: usize,
    seed: u64,
) -> Vec<CheckEvent> {
    use CheckEvent as E;
    let mut out = Vec::with_capacity(events + 2 * threads as usize);
    for t in 0..threads {
        out.push(E::Fork {
            parent: 1,
            child: t + 2,
        });
    }
    let mut s = seed | 1;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    while out.len() < events {
        // Threads record in scheduling bursts, the way a real
        // `EventLog` fills: one tid appends a run of events before
        // the next thread's quantum. 16–63-event bursts give the
        // binary format's per-thread blocks realistic runs.
        let r0 = rng();
        let tid = (r0 % threads as u64) as u32 + 2;
        let band = (tid as usize - 2) * granules_per_thread;
        let burst = 16 + (r0 >> 32) as usize % 48;
        for _ in 0..burst {
            let r = rng();
            let len = (r >> 16) as usize % 7 + 1;
            // Keep `granule + len` inside the band: a range spilling
            // into the neighbor's band would be a real race.
            let granule = band + ((r >> 8) as usize % (granules_per_thread - len));
            match (r >> 32) % 100 {
                0..=54 => out.push(E::Write { tid, granule }),
                55..=84 => out.push(E::Read { tid, granule }),
                85..=89 => out.push(E::RangeWrite { tid, granule, len }),
                90..=93 => out.push(E::RangeRead { tid, granule, len }),
                94..=95 => {
                    // A held-lock access, acquire..release adjacent
                    // so the triple is legal wherever it lands.
                    let lock = granule % 5;
                    out.push(E::Acquire { tid, lock });
                    out.push(E::LockedAccess { tid, lock });
                    out.push(E::Release { tid, lock });
                }
                96..=97 => out.push(E::SharingCast {
                    tid,
                    granule,
                    refs: 1,
                }),
                _ => out.push(E::RangeCast {
                    tid,
                    granule,
                    len,
                    refs: 1,
                }),
            }
        }
    }
    out.truncate(events);
    for t in 0..threads {
        out.push(E::ThreadExit { tid: t + 2 });
    }
    out
}

/// One measured record behind the `trace` section of
/// `BENCH_checker.json`: the synthetic spine trace's size in both
/// encodings plus the replay-parallelism context of the host.
#[derive(Debug, Clone)]
pub struct TraceRow {
    pub name: &'static str,
    pub events: usize,
    pub threads: u32,
    pub text_bytes: usize,
    pub binary_bytes: usize,
    pub replay_jobs: usize,
    pub cpus: usize,
}

/// How many workers the `replay/par-N` row uses.
pub const REPLAY_JOBS: usize = 4;

/// The `trace/{encode,decode}-{text,binary}` and
/// `replay/{seq,par-4}` rows. Encode/decode rows time both codecs on
/// a 10⁶-event prefix; the replay rows and the byte comparison use
/// the full trace — 10⁷ events, or 10⁶ under `--smoke`.
pub fn trace_replay_rows(g: &mut sharc_testkit::Bench, smoke: bool) -> TraceRow {
    use sharc_checker::{
        geometry_for_trace, parse_binary, parse_trace, to_binary, trace_to_text, BitmapBackend,
        ParallelReplay,
    };
    let events = if smoke { 1_000_000 } else { 10_000_000 };
    let threads = 64u32;
    let trace = synthetic_spine_trace(events, threads, 512, 0x5ac5_b17e);
    let cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    // Codec rows on a bounded prefix so five laps of four rows stay
    // cheap; ratios are what the gate checks and they are
    // size-independent past cache effects.
    let prefix = &trace[..trace.len().min(1_000_000)];
    let text = trace_to_text(prefix);
    let binary = to_binary(prefix);
    g.bench("trace/encode-text", || trace_to_text(prefix).len());
    g.bench("trace/encode-binary", || to_binary(prefix).len());
    g.bench("trace/decode-text", || {
        parse_trace(&text).expect("text decodes").len()
    });
    g.bench("trace/decode-binary", || {
        parse_binary(&binary).expect("binary decodes").len()
    });

    // The archive claim is measured on the whole trace.
    let text_bytes = trace_to_text(&trace).len();
    let binary_bytes = to_binary(&trace).len();

    // Replay rows: fresh backend per lap (replay mutates it), shared
    // geometry precomputed outside the timer.
    let geom = geometry_for_trace(&trace);
    g.bench("replay/seq", || {
        replay(&trace, &mut BitmapBackend::with_geometry(geom)).len()
    });
    let par = ParallelReplay::new(REPLAY_JOBS);
    g.bench(&format!("replay/par-{REPLAY_JOBS}"), || {
        par.replay(&trace, move || {
            Box::new(BitmapBackend::with_geometry(geom)) as _
        })
        .len()
    });

    // Outside the timers: the engines must agree exactly — and this
    // synthetic trace is conflict-free by construction.
    let seq_conflicts = replay(&trace, &mut BitmapBackend::with_geometry(geom));
    let par_conflicts = par.replay(&trace, move || {
        Box::new(BitmapBackend::with_geometry(geom)) as _
    });
    assert_eq!(
        seq_conflicts, par_conflicts,
        "parallel replay verdicts must be bit-identical to sequential"
    );
    assert!(
        seq_conflicts.is_empty(),
        "the synthetic spine trace is conflict-free by construction"
    );

    TraceRow {
        name: "spine-synthetic",
        events: trace.len(),
        threads,
        text_bytes,
        binary_bytes,
        replay_jobs: REPLAY_JOBS,
        cpus,
    }
}

/// The binary-trace acceptance gate: on the same trace, binary v4
/// must cost at most ¼ the bytes of text v3, and binary
/// encode+decode must beat text encode+decode by ≥2× (per-row
/// minima, like every other gate).
pub fn assert_trace_wins(g: &sharc_testkit::Bench, row: &TraceRow) {
    let row_min = |name: &str| {
        g.results()
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.min_ns)
            .expect("trace row ran")
    };
    eprintln!(
        "trace bytes ({} events): text {} vs binary {} ({:.1}x smaller)",
        row.events,
        row.text_bytes,
        row.binary_bytes,
        row.text_bytes as f64 / row.binary_bytes as f64
    );
    assert!(
        row.binary_bytes * 4 <= row.text_bytes,
        "binary trace must be at most 1/4 the bytes of text ({} vs {})",
        row.binary_bytes,
        row.text_bytes
    );
    let (te, td) = (row_min("trace/encode-text"), row_min("trace/decode-text"));
    let (be, bd) = (
        row_min("trace/encode-binary"),
        row_min("trace/decode-binary"),
    );
    eprintln!("trace codec: text {te}+{td} ns vs binary {be}+{bd} ns (min)");
    assert!(
        (be + bd) * 2 <= te + td,
        "binary encode+decode must beat text by >=2x ({be}+{bd} ns vs {te}+{td} ns)"
    );
}

/// The parallel-replay acceptance gate. On a multi-core host the
/// `replay/par-4` minimum must be at least 2× below `replay/seq`'s.
/// On a single-CPU host a wall-clock speedup is physically
/// impossible — four workers time-slice one core, and each scans the
/// whole event slice — so the gate degrades to an overhead bound
/// (par ≤ 4× seq, i.e. the sharding itself adds little beyond the
/// replicated scans) and says so instead of asserting a fiction. The
/// verdict equality half of the claim is asserted unconditionally in
/// [`trace_replay_rows`].
pub fn assert_parallel_replay_wins(g: &sharc_testkit::Bench, row: &TraceRow) {
    let row_min = |name: &str| {
        g.results()
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.min_ns)
            .expect("replay row ran")
    };
    let (seq, par) = (
        row_min("replay/seq"),
        row_min(&format!("replay/par-{}", row.replay_jobs)),
    );
    eprintln!(
        "replay ({} events): seq {seq} ns vs par-{} {par} ns (min) on {} cpu(s)",
        row.events, row.replay_jobs, row.cpus
    );
    if row.cpus >= 2 {
        assert!(
            par * 2 <= seq,
            "parallel replay must be >=2x faster than sequential ({par} ns vs {seq} ns on {} cpus)",
            row.cpus
        );
    } else {
        eprintln!(
            "replay: single-CPU host — the >=2x wall-clock gate cannot bind; \
             bounding sharding overhead instead"
        );
        assert!(
            par <= seq.saturating_mul(4),
            "parallel replay overhead out of bounds on 1 cpu ({par} ns vs {seq} ns)"
        );
    }
}

/// Writes `BENCH_checker.json` at the repo root: the standard bench
/// document augmented with the exact `flushes`/`misses` counters,
/// the stunnel fleet's derived throughput records, the streaming
/// pipeline's memory accounting, and the per-workload static elision
/// percentages, so the bench trajectory is recorded across PRs.
pub fn write_checker_json_at_repo_root(
    g: &sharc_testkit::Bench,
    counters: &[EpochCounters],
    stunnel: &[StunnelRow],
    online: &[OnlineRow],
    elision: &[ElisionRow],
    trace: &[TraceRow],
) {
    use sharc_testkit::Json;
    let mut doc = g.to_json();
    let arr = Json::Arr(
        counters
            .iter()
            .map(|c| {
                Json::obj([
                    ("name", Json::Str(c.name.to_string())),
                    ("laps", Json::Int(EPOCH_COUNTER_LAPS as i64)),
                    ("flushes", Json::Int(c.flushes as i64)),
                    ("misses", Json::Int(c.misses as i64)),
                ])
            })
            .collect(),
    );
    let stunnel_arr = Json::Arr(
        stunnel
            .iter()
            .map(|r| {
                Json::obj([
                    ("name", Json::Str(r.name.clone())),
                    ("clients", Json::Int(r.clients as i64)),
                    ("workers", Json::Int(r.workers as i64)),
                    ("messages", Json::Int(r.messages as i64)),
                    ("msgs_per_sec", Json::Int(r.msgs_per_sec)),
                ])
            })
            .collect(),
    );
    let online_arr = Json::Arr(
        online
            .iter()
            .map(|r| {
                Json::obj([
                    ("name", Json::Str(r.stream_row.clone())),
                    ("untraced", Json::Str(r.untraced_row.clone())),
                    ("rings", Json::Int(r.rings as i64)),
                    ("ring_cap", Json::Int(r.ring_cap as i64)),
                    ("recorded", Json::Int(r.recorded as i64)),
                    ("drains", Json::Int(r.drains as i64)),
                    ("peak_resident", Json::Int(r.peak_resident as i64)),
                    ("ring_budget", Json::Int(r.ring_budget as i64)),
                ])
            })
            .collect(),
    );
    let elision_arr = Json::Arr(
        elision
            .iter()
            .map(|r| {
                Json::obj([
                    ("name", Json::Str(r.name.to_string())),
                    ("checked_slots", Json::Int(r.checked_slots as i64)),
                    ("elided_slots", Json::Int(r.elided_slots as i64)),
                    ("collapsed_reads", Json::Int(r.collapsed_reads as i64)),
                    ("elided_pct", Json::Float(r.elided_pct)),
                ])
            })
            .collect(),
    );
    let trace_arr = Json::Arr(
        trace
            .iter()
            .map(|r| {
                Json::obj([
                    ("name", Json::Str(r.name.to_string())),
                    ("events", Json::Int(r.events as i64)),
                    ("threads", Json::Int(r.threads as i64)),
                    ("text_bytes", Json::Int(r.text_bytes as i64)),
                    ("binary_bytes", Json::Int(r.binary_bytes as i64)),
                    ("replay_jobs", Json::Int(r.replay_jobs as i64)),
                    ("cpus", Json::Int(r.cpus as i64)),
                ])
            })
            .collect(),
    );
    if let Json::Obj(pairs) = &mut doc {
        pairs.push(("counters".to_string(), arr));
        pairs.push(("stunnel".to_string(), stunnel_arr));
        pairs.push(("online".to_string(), online_arr));
        pairs.push(("elision".to_string(), elision_arr));
        pairs.push(("trace".to_string(), trace_arr));
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("..")
        .join("..")
        .join("BENCH_checker.json");
    match std::fs::write(&path, doc.render()) {
        Ok(()) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write {}: {e}", path.display()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sharc_runtime::{Checked, LpRc, NaiveRc, Unchecked};

    #[test]
    fn rc_workload_runs_both_schemes() {
        let naive = Arc::new(NaiveRc::new(64, 16));
        let lp = Arc::new(LpRc::new(64, 16, 2));
        let d1 = rc_workload(naive, 2, 500, 32, 16, 50);
        let d2 = rc_workload(lp, 2, 500, 32, 16, 50);
        assert!(d1 > Duration::ZERO && d2 > Duration::ZERO);
    }

    #[test]
    fn scan_checksums_agree() {
        let a1: Arc<Arena> = Arc::new(Arena::new(64));
        let a2: Arc<Arena> = Arc::new(Arena::new(64));
        let (_, c1) = scan_workload_sharc::<Unchecked>(a1, 2, 32, 3);
        let (_, c2) = scan_workload_sharc::<Checked>(a2, 2, 32, 3);
        let (_, c3) = scan_workload_baseline(2, 32, 3);
        assert_eq!(c1, c2);
        assert_eq!(c1, c3);
    }

    #[test]
    fn epoch_counter_pass_shows_region_dominance() {
        // The deterministic side pass behind BENCH_checker.json's
        // `counters`: on every pattern the region table discards no
        // more entries and misses no more often than the global one.
        let t = ThreadId(1);
        type Lap = fn(&Shadow, ThreadId, &mut OwnedCache);
        let laps: [(&str, Lap); 3] = [
            ("private", epoch_lap_private),
            ("thrash", epoch_lap_thrash),
            ("mixed", epoch_lap_mixed),
        ];
        for (pat, lap) in laps {
            let run = |global: bool| {
                let s = epoch_shadow(global);
                let mut c: OwnedCache = OwnedCache::new();
                for _ in 0..EPOCH_COUNTER_LAPS {
                    lap(&s, t, &mut c);
                }
                (c.flushes, c.misses)
            };
            let (rf, rm) = run(false);
            let (gf, gm) = run(true);
            assert!(rf <= gf, "{pat}: region flushes {rf} > global {gf}");
            assert!(rm <= gm, "{pat}: region misses {rm} > global {gm}");
        }
        // And the thrash pattern specifically must show the point:
        // a point clear costs 4 granules under the region table, the
        // whole table under the global one.
        let thrash = |global: bool| {
            let s = epoch_shadow(global);
            let mut c: OwnedCache = OwnedCache::new();
            for _ in 0..EPOCH_COUNTER_LAPS {
                epoch_lap_thrash(&s, t, &mut c);
            }
            c.misses
        };
        assert!(thrash(false) * 2 < thrash(true));
    }

    #[test]
    fn handoff_trace_is_false_positive_for_baselines() {
        use sharc_detectors::{Eraser, VcDetector};
        let trace = handoff_trace(10);
        assert!(!Eraser::new().run(&trace).is_empty());
        assert!(!VcDetector::new().run(&trace).is_empty());
    }
}
