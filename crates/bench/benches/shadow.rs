//! Criterion bench comparing the paper's bitmap shadow encoding
//! (exact, 8n-1 threads in n bytes) against the scalable adaptive
//! encoding (§4.2.1 future work: unbounded thread ids in 8 bytes).

use criterion::{criterion_group, criterion_main, Criterion};
use sharc_runtime::{ScalableShadow, Shadow, ThreadId, WideThreadId};

const GRANULES: usize = 4096;

fn bench_shadow(c: &mut Criterion) {
    let mut g = c.benchmark_group("shadow");
    g.sample_size(20);

    g.bench_function("bitmap/read-hot", |b| {
        let s: Shadow = Shadow::new(GRANULES);
        let t = ThreadId(1);
        b.iter(|| {
            for i in 0..GRANULES {
                let _ = s.check_read(i, t);
            }
        })
    });
    g.bench_function("scalable/read-hot", |b| {
        let s = ScalableShadow::new(GRANULES);
        let t = WideThreadId(1);
        b.iter(|| {
            for i in 0..GRANULES {
                let _ = s.check_read(i, t);
            }
        })
    });
    g.bench_function("bitmap/write-hot", |b| {
        let s: Shadow = Shadow::new(GRANULES);
        let t = ThreadId(1);
        b.iter(|| {
            for i in 0..GRANULES {
                let _ = s.check_write(i, t);
            }
        })
    });
    g.bench_function("scalable/write-hot", |b| {
        let s = ScalableShadow::new(GRANULES);
        let t = WideThreadId(1);
        b.iter(|| {
            for i in 0..GRANULES {
                let _ = s.check_write(i, t);
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_shadow);
criterion_main!(benches);
