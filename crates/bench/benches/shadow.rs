//! Bench comparing the paper's bitmap shadow encoding (exact, 8n-1
//! threads in n bytes) against the scalable adaptive encoding
//! (§4.2.1 future work: unbounded thread ids in 8 bytes).
//!
//! Runs on the sharc-testkit bench harness (`harness = false`);
//! results land in `target/BENCH_shadow.json`.

use sharc_runtime::{ScalableShadow, Shadow, ThreadId, WideThreadId};
use sharc_testkit::Bench;

const GRANULES: usize = 4096;

fn main() {
    let mut g = Bench::new("shadow");
    g.sample_size(20);

    {
        let s: Shadow = Shadow::new(GRANULES);
        let t = ThreadId(1);
        g.bench("bitmap/read-hot", || {
            for i in 0..GRANULES {
                let _ = s.check_read(i, t);
            }
        });
    }
    {
        let s = ScalableShadow::new(GRANULES);
        let t = WideThreadId(1);
        g.bench("scalable/read-hot", || {
            for i in 0..GRANULES {
                let _ = s.check_read(i, t);
            }
        });
    }
    {
        let s: Shadow = Shadow::new(GRANULES);
        let t = ThreadId(1);
        g.bench("bitmap/write-hot", || {
            for i in 0..GRANULES {
                let _ = s.check_write(i, t);
            }
        });
    }
    {
        let s = ScalableShadow::new(GRANULES);
        let t = WideThreadId(1);
        g.bench("scalable/write-hot", || {
            for i in 0..GRANULES {
                let _ = s.check_write(i, t);
            }
        });
    }
    g.finish();
}
