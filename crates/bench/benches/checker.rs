//! Bench for the unified checker layer: the owned-granule epoch
//! cache against the raw CAS slow path, on the workload shape the
//! cache is built for — one thread repeatedly touching granules it
//! already owns (pfscan's scan buffers, pbzip2's per-worker blocks).
//!
//! Runs on the sharc-testkit bench harness (`harness = false`);
//! results land in the repo-root `BENCH_checker.json` (the single
//! canonical location — nothing is written under `target/` anymore).
//! Accepts `--quick` (or its CI alias `--smoke`) to shrink sample
//! counts.

use sharc_checker::{CheckEvent, EventLog, EventSink, OwnedCache, ShadowGeometry};
use sharc_runtime::{ScalableShadow, Shadow, ShardedShadow, ThreadId, WideThreadId};
use sharc_testkit::Bench;

/// Working set sized to the cache's default slot count, so the
/// direct-mapped table holds every granule (the steady state the
/// cache targets).
const GRANULES: usize = 256;

fn main() {
    // `--smoke` is what ci/check.sh passes everywhere; the harness
    // itself only knows `--quick`.
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut g = Bench::new("checker");
    g.sample_size(if smoke { 5 } else { 20 });

    let t = ThreadId(1);

    // Baseline: every access runs the full atomic-load (+ CAS on
    // first contact) protocol.
    {
        let s: Shadow = Shadow::new(GRANULES);
        g.bench("owned-write/uncached", || {
            for i in 0..GRANULES {
                s.check_write(i, t).unwrap();
            }
        });
    }

    // The epoch cache: after the first lap every access is one
    // relaxed epoch load plus a direct-mapped probe.
    {
        let s: Shadow = Shadow::new(GRANULES);
        let mut cache: OwnedCache = OwnedCache::new();
        g.bench("owned-write/cached", || {
            for i in 0..GRANULES {
                s.check_write_cached(i, t, &mut cache).unwrap();
            }
        });
    }

    {
        let s: Shadow = Shadow::new(GRANULES);
        g.bench("owned-read/uncached", || {
            for i in 0..GRANULES {
                s.check_read(i, t).unwrap();
            }
        });
    }

    {
        let s: Shadow = Shadow::new(GRANULES);
        let mut cache: OwnedCache = OwnedCache::new();
        g.bench("owned-read/cached", || {
            for i in 0..GRANULES {
                s.check_read_cached(i, t, &mut cache).unwrap();
            }
        });
    }

    // Historic worst case for the cache: a clear between laps. Under
    // the global epoch this forced a whole-cache flush plus refill
    // each lap; with the per-region table (the default geometry) the
    // point clear now stales only the 4 granules of its own region —
    // the `epoch/*` rows below measure the two geometries head to
    // head on exactly this pattern.
    {
        let s: Shadow = Shadow::new(GRANULES);
        let mut cache: OwnedCache = OwnedCache::new();
        g.bench("owned-write/cached-epoch-thrash", || {
            for i in 0..GRANULES {
                s.check_write_cached(i, t, &mut cache).unwrap();
            }
            s.clear(0);
        });
    }

    // ---- Epoch geometry: region vs global invalidation ----
    //
    // The six `epoch/{region,global}-{private,thrash,mixed}` rows and
    // their exact flush/miss counters (shared with `table1 --smoke`
    // via sharc_bench so both write the same repo-root JSON).
    let epoch_counters = sharc_bench::epoch_rows(&mut g);

    // ---- Epoch geometry sweep: regions x working set ----
    //
    // The `epoch-geom/r{R}-ws{WS}` grid grounding DEFAULT_REGIONS =
    // 64 (see sharc_bench::epoch_geometry_rows for the pattern).
    sharc_bench::epoch_geometry_rows(&mut g);

    // ---- Ranged checks: one chkread/chkwrite per buffer sweep ----
    //
    // The tentpole rows. One granule models 16 bytes, so 4 KiB = 256
    // granules (exactly the per-granule rows' working set, making
    // `range/owned-4k` vs `owned-write/cached` a like-for-like lap)
    // and 64 KiB = 4096 granules.
    for &(kb, granules) in &[(4usize, 256usize), (64, 4096)] {
        // Steady-state owned sweep, cached: after the first lap the
        // whole sweep is one epoch-sum compare against the owned-run
        // summary — the >=4x acceptance gate below is on this row.
        {
            let s: Shadow = Shadow::new(granules);
            let mut cache: OwnedCache = OwnedCache::new();
            g.bench(&format!("range/owned-{kb}k"), || {
                s.check_range_write_cached(0, granules, t, &mut cache, |_| {}, |_| {})
            });
        }
        // Every granule SHARED_READ with this tid's bit already set:
        // the uncached ranged read classifies the run with one load +
        // `range::recorded` test per granule, no CAS, no cache.
        {
            let s: Shadow = Shadow::new(granules);
            for i in 0..granules {
                s.check_read(i, ThreadId(1)).unwrap();
                s.check_read(i, ThreadId(2)).unwrap();
            }
            g.bench(&format!("range/shared-read-{kb}k"), || {
                s.check_range_read(0, granules, t, |_| {}, |_| {})
            });
        }
        // Mixed: a mid-range point clear per lap bumps one covered
        // region epoch, so the covering stamp misses every lap and
        // the sweep pays the outlined fill path (per-granule cached
        // checks; only the cleared region's granule actually
        // re-checks through the CAS protocol).
        {
            let s: Shadow = Shadow::new(granules);
            let mut cache: OwnedCache = OwnedCache::new();
            g.bench(&format!("range/mixed-{kb}k"), || {
                let c = s.check_range_write_cached(0, granules, t, &mut cache, |_| {}, |_| {});
                s.clear(granules / 2);
                c
            });
        }
    }

    // ---- Ranged casts & frees: one-operation block hand-off ----
    //
    // The block hand-off exactly as pbzip2/stunnel/handoff perform
    // it: record the cast on the spine, then clear the block's
    // shadow. Ranged: ONE `RangeCast` plus `clear_range` (a word
    // sweep with one epoch bump per covered region). Granule: one
    // `SharingCast` record plus one `clear` — with its own epoch
    // bump — per granule, the pre-ranged shape.
    for &(kb, granules) in &[(4usize, 256usize), (64, 4096)] {
        {
            let s: Shadow = Shadow::new(granules);
            let log = EventLog::new();
            g.bench(&format!("cast/block-{kb}k-ranged"), || {
                log.record_range_cast(1, 0, granules, 1);
                s.clear_range(0, granules);
                log.take().len()
            });
        }
        {
            let s: Shadow = Shadow::new(granules);
            let log = EventLog::new();
            g.bench(&format!("cast/block-{kb}k-granule"), || {
                for gr in 0..granules {
                    log.record(CheckEvent::SharingCast {
                        tid: 1,
                        granule: gr,
                        refs: 1,
                    });
                    s.clear(gr);
                }
                log.take().len()
            });
        }
    }

    // ---- Associativity × slot-count sweep ----
    //
    // The cache is const-generic over WAYS. A direct-mapped table
    // (WAYS = 1) thrashes when two hot granules alias to the same
    // set; a 2-way set holds both at the cost of a slightly longer
    // probe. The sweep records both shapes at two table sizes on (a)
    // an aliasing access pattern and (b) the sequential pattern the
    // direct map is optimal for. WAYS = 1 stays the default: it wins
    // the common sequential case and loses only under aliasing.
    for &slots in &[64usize, 256] {
        // `i` and `i + slots` land in the same set in both
        // geometries (1-way: sets == slots, (i + slots) mod slots ==
        // i; 2-way: sets == slots/2 and slots is a multiple of it).
        // The loop covers `0..slots/2` so each set sees exactly its
        // aliased pair: two residents fit a 2-way set but thrash a
        // direct-mapped one.
        let span = slots * 2 + GRANULES;
        {
            let s: Shadow = Shadow::new(span);
            let mut c = OwnedCache::<1>::with_slots(slots);
            g.bench(&format!("assoc/w1-s{slots}-alias"), || {
                for i in 0..slots / 2 {
                    s.check_write_cached(i, t, &mut c).unwrap();
                    s.check_write_cached(i + slots, t, &mut c).unwrap();
                }
            });
        }
        {
            let s: Shadow = Shadow::new(span);
            let mut c = OwnedCache::<2>::with_slots(slots);
            g.bench(&format!("assoc/w2-s{slots}-alias"), || {
                for i in 0..slots / 2 {
                    s.check_write_cached(i, t, &mut c).unwrap();
                    s.check_write_cached(i + slots, t, &mut c).unwrap();
                }
            });
        }
        {
            let s: Shadow = Shadow::new(span);
            let mut c = OwnedCache::<1>::with_slots(slots);
            g.bench(&format!("assoc/w1-s{slots}-seq"), || {
                for i in 0..slots / 2 {
                    s.check_write_cached(i, t, &mut c).unwrap();
                }
            });
        }
        {
            let s: Shadow = Shadow::new(span);
            let mut c = OwnedCache::<2>::with_slots(slots);
            g.bench(&format!("assoc/w2-s{slots}-seq"), || {
                for i in 0..slots / 2 {
                    s.check_write_cached(i, t, &mut c).unwrap();
                }
            });
        }
    }

    // ---- Sharded exact shadow ----
    //
    // The ≤63-thread fast path (one shard, the default geometry)
    // against the wide five-shard geometry, with both an in-shard tid
    // and a tid that lives past the first shard; plus the
    // adaptive-only wrapper for reference. All loops are steady-state
    // owned writes, the same shape as the bitmap benches above.
    {
        let s = ShardedShadow::new(GRANULES);
        g.bench("sharded/1shard-write-tid1", || {
            for i in 0..GRANULES {
                s.check_write(i, WideThreadId(1)).unwrap();
            }
        });
    }
    {
        let s = ShardedShadow::with_geometry(GRANULES, ShadowGeometry::for_threads(256));
        g.bench("sharded/5shard-write-tid1", || {
            for i in 0..GRANULES {
                s.check_write(i, WideThreadId(1)).unwrap();
            }
        });
    }
    {
        let s = ShardedShadow::with_geometry(GRANULES, ShadowGeometry::for_threads(256));
        g.bench("sharded/5shard-write-tid200", || {
            for i in 0..GRANULES {
                s.check_write(i, WideThreadId(200)).unwrap();
            }
        });
    }
    {
        let s = ShardedShadow::with_geometry(GRANULES, ShadowGeometry::for_threads(256));
        let mut c = OwnedCache::<1>::new();
        g.bench("sharded/5shard-write-tid200-cached", || {
            for i in 0..GRANULES {
                s.check_write_cached(i, WideThreadId(200), &mut c).unwrap();
            }
        });
    }
    {
        let s = ScalableShadow::new(GRANULES);
        g.bench("sharded/adaptive-write-tid1000", || {
            for i in 0..GRANULES {
                s.check_write(i, WideThreadId(1000)).unwrap();
            }
        });
    }

    // ---- VM private loop: elision vs the owned-granule cache ----
    //
    // The same check-dominated private loop the cache delta has
    // always used, now three ways: the default build (the elision
    // pass deletes every check in the worker body) and the
    // fully-checked reference build with the per-thread cache on and
    // off. The default build stopped being a cache benchmark when
    // elision landed — it has no check instructions to cache — so the
    // cache rows pin the full-checks build explicitly.
    sharc_bench::elision_vm_rows(&mut g);

    // ---- Per-workload static elision ----
    //
    // Deterministic compile-time pass over the Table 1 MiniC ports:
    // how much of each port's instrumentation the escape+lockset
    // analysis deletes before it can cost anything at runtime.
    let elision_rows = sharc_bench::elision_rows();
    for r in &elision_rows {
        eprintln!(
            "elision/{}: {} of {} check slots elided ({:.0}%), {} reads collapsed",
            r.name, r.elided_slots, r.checked_slots, r.elided_pct, r.collapsed_reads
        );
    }

    // ---- Wide-tid stunnel fleet ----
    //
    // End-to-end server rows: 100+ real worker threads per run on the
    // checked spine, the unchecked twin for overhead, and the
    // clients × workers contention sweep. Timing rows land in the
    // group (p50/p95 with everything else); the derived
    // messages-per-second records go into the JSON's `stunnel` array.
    let stunnel_rows = sharc_bench::stunnel_rows(&mut g, smoke);

    // ---- Streaming online detection ----
    //
    // The bounded-memory pipeline against the untraced checked runs:
    // stunnel at fleet shape and pbzip2, with ring budgets far below
    // the runs' event counts. The accounting records land in the
    // JSON's `online` array; the bounds are asserted below.
    let online_rows = sharc_bench::online_rows(&mut g, smoke);

    // ---- Binary traces + parallel replay ----
    //
    // The archive rows: one 10⁷-event synthetic spine trace (10⁶
    // under --smoke) encoded as text v3 and binary v4, decoded back,
    // and replayed sequentially vs region-sharded over 4 workers.
    // Heavy laps, so the sample count drops to 3 for these rows.
    g.sample_size(3);
    let trace_rows = vec![sharc_bench::trace_replay_rows(&mut g, smoke)];
    g.sample_size(if smoke { 5 } else { 20 });

    // Machine-readable trajectory across PRs: the full row set plus
    // the deterministic flush/miss counters, at the repo root — the
    // ONLY place this group's JSON lands (the old duplicate under
    // `crates/bench/target/` is gone).
    sharc_bench::write_checker_json_at_repo_root(
        &g,
        &epoch_counters,
        &stunnel_rows,
        &online_rows,
        &elision_rows,
        &trace_rows,
    );

    // The acceptance criterion, enforced at bench time: the cached
    // fast path must stay competitive with the uncached CAS on the
    // single-owner workload. Under the global epoch of PR 2/3 the
    // epoch check was loop-invariant and the cache strictly won this
    // microloop; the per-region tag makes the guard load per-access
    // (it indexes by granule), so on x86 — where a SeqCst load is a
    // plain mov — pure hits are now parity, within noise. The cache's
    // wins live elsewhere and are asserted elsewhere: first-contact
    // CAS elision, the >=2x thrash resilience checked by
    // `assert_epoch_wins` below, and the end-to-end VM delta.
    let results = g.results();
    // Minima, not medians or means: these are constant-work loops, so
    // the fastest sample is the least noise-contaminated one — a
    // scheduler hiccup in a shared environment can poison a median at
    // small sample counts without saying anything about the code
    // under test. (The JSON still records the full distribution.)
    let min = |name: &str| {
        results
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.min_ns)
            .expect("bench ran")
    };
    let (unc, cac) = (min("owned-write/uncached"), min("owned-write/cached"));
    eprintln!("checker bench: uncached {unc} ns/lap (min), cached {cac} ns/lap");
    assert!(
        cac <= unc + unc / 5,
        "epoch cache fell off the CAS slow path by >20% ({cac} vs {unc} ns)"
    );

    // And the tentpole claim: the region table wins >=2x under thrash
    // and is free when nothing is cleared.
    sharc_bench::assert_epoch_wins(&g);

    // Streaming acceptance gate: peak resident events under the ring
    // budget (with the budget genuinely binding) and the streamed
    // stunnel fleet within 1.25x of the untraced checked run.
    sharc_bench::assert_online_bounds(&g, &online_rows);

    // Elision acceptance gate: deleting the private loop's checks
    // statically must beat passing them through the owned cache.
    sharc_bench::assert_elision_wins(&g);

    // Ranged acceptance gate: on the owned 4 KiB lap (256 granules,
    // the same working set as `owned-write/cached`), the steady-state
    // ranged sweep — one epoch-sum + one run-slot compare — must beat
    // the per-granule cached loop by >=4x.
    let (rng, per) = (min("range/owned-4k"), min("owned-write/cached"));
    eprintln!("range owned-4k: ranged {rng} ns/lap (min) vs per-granule cached {per} ns/lap");
    assert!(
        rng * 4 <= per,
        "ranged owned sweep must beat the per-granule cached loop >=4x ({rng} * 4 > {per} ns)"
    );

    // Ranged-cast acceptance gate: the one-operation block hand-off
    // beats the per-granule cast+clear loop >=4x on 4 KiB blocks, and
    // the win holds at 64 KiB.
    sharc_bench::assert_ranged_cast_wins(&g);

    // Binary-trace acceptance gates: binary v4 at most 1/4 the bytes
    // of text on the same trace, encode+decode >=2x faster; parallel
    // replay >=2x faster than sequential on a multi-core host (with
    // an honest overhead bound on a single CPU — see the gate).
    sharc_bench::assert_trace_wins(&g, &trace_rows[0]);
    sharc_bench::assert_parallel_replay_wins(&g, &trace_rows[0]);
}
