//! Bench for the unified checker layer: the owned-granule epoch
//! cache against the raw CAS slow path, on the workload shape the
//! cache is built for — one thread repeatedly touching granules it
//! already owns (pfscan's scan buffers, pbzip2's per-worker blocks).
//!
//! Runs on the sharc-testkit bench harness (`harness = false`);
//! results land in `target/BENCH_checker.json`. Accepts `--quick`
//! (or its CI alias `--smoke`) to shrink sample counts.

use sharc_checker::OwnedCache;
use sharc_runtime::{Shadow, ThreadId};
use sharc_testkit::Bench;

/// Working set sized to the cache's default slot count, so the
/// direct-mapped table holds every granule (the steady state the
/// cache targets).
const GRANULES: usize = 256;

fn main() {
    // `--smoke` is what ci/check.sh passes everywhere; the harness
    // itself only knows `--quick`.
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut g = Bench::new("checker");
    g.sample_size(if smoke { 5 } else { 20 });

    let t = ThreadId(1);

    // Baseline: every access runs the full atomic-load (+ CAS on
    // first contact) protocol.
    {
        let s: Shadow = Shadow::new(GRANULES);
        g.bench("owned-write/uncached", || {
            for i in 0..GRANULES {
                s.check_write(i, t).unwrap();
            }
        });
    }

    // The epoch cache: after the first lap every access is one
    // relaxed epoch load plus a direct-mapped probe.
    {
        let s: Shadow = Shadow::new(GRANULES);
        let mut cache = OwnedCache::new();
        g.bench("owned-write/cached", || {
            for i in 0..GRANULES {
                s.check_write_cached(i, t, &mut cache).unwrap();
            }
        });
    }

    {
        let s: Shadow = Shadow::new(GRANULES);
        g.bench("owned-read/uncached", || {
            for i in 0..GRANULES {
                s.check_read(i, t).unwrap();
            }
        });
    }

    {
        let s: Shadow = Shadow::new(GRANULES);
        let mut cache = OwnedCache::new();
        g.bench("owned-read/cached", || {
            for i in 0..GRANULES {
                s.check_read_cached(i, t, &mut cache).unwrap();
            }
        });
    }

    // Worst case for the cache: a clear between laps bumps the epoch
    // and forces a whole-cache flush plus refill each iteration.
    {
        let s: Shadow = Shadow::new(GRANULES);
        let mut cache = OwnedCache::new();
        g.bench("owned-write/cached-epoch-thrash", || {
            for i in 0..GRANULES {
                s.check_write_cached(i, t, &mut cache).unwrap();
            }
            s.clear(0);
        });
    }

    g.finish();

    // The acceptance criterion, enforced at bench time: the cached
    // fast path must beat the uncached CAS on the single-owner
    // workload.
    let results = g.results();
    // Medians, not means: a single scheduler hiccup in a shared
    // environment can poison a mean without saying anything about
    // the code under test.
    let median = |name: &str| {
        results
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.median_ns)
            .expect("bench ran")
    };
    let (unc, cac) = (median("owned-write/uncached"), median("owned-write/cached"));
    eprintln!("checker bench: uncached {unc} ns/lap (median), cached {cac} ns/lap");
    assert!(
        cac < unc,
        "epoch cache must beat the CAS slow path ({cac} !< {unc} ns)"
    );
}
