//! Bench for the unified checker layer: the owned-granule epoch
//! cache against the raw CAS slow path, on the workload shape the
//! cache is built for — one thread repeatedly touching granules it
//! already owns (pfscan's scan buffers, pbzip2's per-worker blocks).
//!
//! Runs on the sharc-testkit bench harness (`harness = false`);
//! results land in `target/BENCH_checker.json`. Accepts `--quick`
//! (or its CI alias `--smoke`) to shrink sample counts.

use sharc_checker::{OwnedCache, ShadowGeometry};
use sharc_interp::{compile_and_run, VmConfig};
use sharc_runtime::{ScalableShadow, Shadow, ShardedShadow, ThreadId, WideThreadId};
use sharc_testkit::Bench;

/// Working set sized to the cache's default slot count, so the
/// direct-mapped table holds every granule (the steady state the
/// cache targets).
const GRANULES: usize = 256;

fn main() {
    // `--smoke` is what ci/check.sh passes everywhere; the harness
    // itself only knows `--quick`.
    let smoke = std::env::args().any(|a| a == "--smoke");
    let mut g = Bench::new("checker");
    g.sample_size(if smoke { 5 } else { 20 });

    let t = ThreadId(1);

    // Baseline: every access runs the full atomic-load (+ CAS on
    // first contact) protocol.
    {
        let s: Shadow = Shadow::new(GRANULES);
        g.bench("owned-write/uncached", || {
            for i in 0..GRANULES {
                s.check_write(i, t).unwrap();
            }
        });
    }

    // The epoch cache: after the first lap every access is one
    // relaxed epoch load plus a direct-mapped probe.
    {
        let s: Shadow = Shadow::new(GRANULES);
        let mut cache: OwnedCache = OwnedCache::new();
        g.bench("owned-write/cached", || {
            for i in 0..GRANULES {
                s.check_write_cached(i, t, &mut cache).unwrap();
            }
        });
    }

    {
        let s: Shadow = Shadow::new(GRANULES);
        g.bench("owned-read/uncached", || {
            for i in 0..GRANULES {
                s.check_read(i, t).unwrap();
            }
        });
    }

    {
        let s: Shadow = Shadow::new(GRANULES);
        let mut cache: OwnedCache = OwnedCache::new();
        g.bench("owned-read/cached", || {
            for i in 0..GRANULES {
                s.check_read_cached(i, t, &mut cache).unwrap();
            }
        });
    }

    // Worst case for the cache: a clear between laps bumps the epoch
    // and forces a whole-cache flush plus refill each iteration.
    {
        let s: Shadow = Shadow::new(GRANULES);
        let mut cache: OwnedCache = OwnedCache::new();
        g.bench("owned-write/cached-epoch-thrash", || {
            for i in 0..GRANULES {
                s.check_write_cached(i, t, &mut cache).unwrap();
            }
            s.clear(0);
        });
    }

    // ---- Associativity × slot-count sweep ----
    //
    // The cache is const-generic over WAYS. A direct-mapped table
    // (WAYS = 1) thrashes when two hot granules alias to the same
    // set; a 2-way set holds both at the cost of a slightly longer
    // probe. The sweep records both shapes at two table sizes on (a)
    // an aliasing access pattern and (b) the sequential pattern the
    // direct map is optimal for. WAYS = 1 stays the default: it wins
    // the common sequential case and loses only under aliasing.
    for &slots in &[64usize, 256] {
        // `i` and `i + slots` land in the same set in both
        // geometries (1-way: sets == slots, (i + slots) mod slots ==
        // i; 2-way: sets == slots/2 and slots is a multiple of it).
        // The loop covers `0..slots/2` so each set sees exactly its
        // aliased pair: two residents fit a 2-way set but thrash a
        // direct-mapped one.
        let span = slots * 2 + GRANULES;
        {
            let s: Shadow = Shadow::new(span);
            let mut c = OwnedCache::<1>::with_slots(slots);
            g.bench(&format!("assoc/w1-s{slots}-alias"), || {
                for i in 0..slots / 2 {
                    s.check_write_cached(i, t, &mut c).unwrap();
                    s.check_write_cached(i + slots, t, &mut c).unwrap();
                }
            });
        }
        {
            let s: Shadow = Shadow::new(span);
            let mut c = OwnedCache::<2>::with_slots(slots);
            g.bench(&format!("assoc/w2-s{slots}-alias"), || {
                for i in 0..slots / 2 {
                    s.check_write_cached(i, t, &mut c).unwrap();
                    s.check_write_cached(i + slots, t, &mut c).unwrap();
                }
            });
        }
        {
            let s: Shadow = Shadow::new(span);
            let mut c = OwnedCache::<1>::with_slots(slots);
            g.bench(&format!("assoc/w1-s{slots}-seq"), || {
                for i in 0..slots / 2 {
                    s.check_write_cached(i, t, &mut c).unwrap();
                }
            });
        }
        {
            let s: Shadow = Shadow::new(span);
            let mut c = OwnedCache::<2>::with_slots(slots);
            g.bench(&format!("assoc/w2-s{slots}-seq"), || {
                for i in 0..slots / 2 {
                    s.check_write_cached(i, t, &mut c).unwrap();
                }
            });
        }
    }

    // ---- Sharded exact shadow ----
    //
    // The ≤63-thread fast path (one shard, the default geometry)
    // against the wide five-shard geometry, with both an in-shard tid
    // and a tid that lives past the first shard; plus the
    // adaptive-only wrapper for reference. All loops are steady-state
    // owned writes, the same shape as the bitmap benches above.
    {
        let s = ShardedShadow::new(GRANULES);
        g.bench("sharded/1shard-write-tid1", || {
            for i in 0..GRANULES {
                s.check_write(i, WideThreadId(1)).unwrap();
            }
        });
    }
    {
        let s = ShardedShadow::with_geometry(GRANULES, ShadowGeometry::for_threads(256));
        g.bench("sharded/5shard-write-tid1", || {
            for i in 0..GRANULES {
                s.check_write(i, WideThreadId(1)).unwrap();
            }
        });
    }
    {
        let s = ShardedShadow::with_geometry(GRANULES, ShadowGeometry::for_threads(256));
        g.bench("sharded/5shard-write-tid200", || {
            for i in 0..GRANULES {
                s.check_write(i, WideThreadId(200)).unwrap();
            }
        });
    }
    {
        let s = ShardedShadow::with_geometry(GRANULES, ShadowGeometry::for_threads(256));
        let mut c = OwnedCache::<1>::new();
        g.bench("sharded/5shard-write-tid200-cached", || {
            for i in 0..GRANULES {
                s.check_write_cached(i, WideThreadId(200), &mut c).unwrap();
            }
        });
    }
    {
        let s = ScalableShadow::new(GRANULES);
        g.bench("sharded/adaptive-write-tid1000", || {
            for i in 0..GRANULES {
                s.check_write(i, WideThreadId(1000)).unwrap();
            }
        });
    }

    // ---- VM owned-granule cache delta ----
    //
    // The interpreter's per-thread cache mirrors the native one; this
    // pair records the end-to-end delta on a check-dominated private
    // loop (same program, cache on vs off).
    const VM_SRC: &str =
        "void worker(int * d) { int i; for (i = 0; i < 3000; i++) *d = *d + 1; }\n\
                          void main() { int * p; int t; p = new(int); \
                          t = spawn(worker, p); join(t); print(*p); }";
    g.bench("vm/private-loop/cache-on", || {
        compile_and_run("v.c", VM_SRC, VmConfig::default()).unwrap()
    });
    g.bench("vm/private-loop/cache-off", || {
        compile_and_run(
            "v.c",
            VM_SRC,
            VmConfig {
                owned_cache: false,
                ..VmConfig::default()
            },
        )
        .unwrap()
    });

    g.finish();

    // The acceptance criterion, enforced at bench time: the cached
    // fast path must beat the uncached CAS on the single-owner
    // workload.
    let results = g.results();
    // Medians, not means: a single scheduler hiccup in a shared
    // environment can poison a mean without saying anything about
    // the code under test.
    let median = |name: &str| {
        results
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.median_ns)
            .expect("bench ran")
    };
    let (unc, cac) = (median("owned-write/uncached"), median("owned-write/cached"));
    eprintln!("checker bench: uncached {unc} ns/lap (median), cached {cac} ns/lap");
    assert!(
        cac < unc,
        "epoch cache must beat the CAS slow path ({cac} !< {unc} ns)"
    );
}
