//! Bench for the §6.2 comparison: per-access monitoring cost of
//! SharC's shadow checks vs Eraser-lockset and vector-clock detectors
//! on the same scan workload.
//!
//! Runs on the sharc-testkit bench harness (`harness = false`);
//! results land in `target/BENCH_detectors.json`.

use sharc_bench::{scan_workload_baseline, scan_workload_detector, scan_workload_sharc};
use sharc_detectors::{Eraser, Online, VcDetector};
use sharc_runtime::{Arena, Checked};
use sharc_testkit::Bench;
use std::sync::Arc;

const THREADS: usize = 4;
const WORDS: usize = 1024;
const PASSES: usize = 10;

fn main() {
    let mut g = Bench::new("detectors");
    g.sample_size(10);
    g.bench("orig", || scan_workload_baseline(THREADS, WORDS, PASSES));
    g.bench("sharc", || {
        let arena: Arc<Arena> = Arc::new(Arena::new(THREADS * WORDS));
        scan_workload_sharc::<Checked>(arena, THREADS, WORDS, PASSES)
    });
    g.bench("eraser", || {
        let d: Arc<Online<Eraser>> = Arc::new(Online::new());
        scan_workload_detector(d, THREADS, WORDS, PASSES)
    });
    g.bench("vector-clock", || {
        let d: Arc<Online<VcDetector>> = Arc::new(Online::new());
        scan_workload_detector(d, THREADS, WORDS, PASSES)
    });
    g.finish();
}
