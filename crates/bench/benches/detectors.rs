//! Criterion bench for the §6.2 comparison: per-access monitoring
//! cost of SharC's shadow checks vs Eraser-lockset and vector-clock
//! detectors on the same scan workload.

use criterion::{criterion_group, criterion_main, Criterion};
use sharc_bench::{scan_workload_baseline, scan_workload_detector, scan_workload_sharc};
use sharc_detectors::{Eraser, Online, VcDetector};
use sharc_runtime::{Arena, Checked};
use std::sync::Arc;

const THREADS: usize = 4;
const WORDS: usize = 1024;
const PASSES: usize = 10;

fn bench_detectors(c: &mut Criterion) {
    let mut g = c.benchmark_group("detectors");
    g.sample_size(10);
    g.bench_function("orig", |b| {
        b.iter(|| scan_workload_baseline(THREADS, WORDS, PASSES))
    });
    g.bench_function("sharc", |b| {
        b.iter(|| {
            let arena: Arc<Arena> = Arc::new(Arena::new(THREADS * WORDS));
            scan_workload_sharc::<Checked>(arena, THREADS, WORDS, PASSES)
        })
    });
    g.bench_function("eraser", |b| {
        b.iter(|| {
            let d: Arc<Online<Eraser>> = Arc::new(Online::new());
            scan_workload_detector(d, THREADS, WORDS, PASSES)
        })
    });
    g.bench_function("vector-clock", |b| {
        b.iter(|| {
            let d: Arc<Online<VcDetector>> = Arc::new(Online::new());
            scan_workload_detector(d, THREADS, WORDS, PASSES)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_detectors);
criterion_main!(benches);
