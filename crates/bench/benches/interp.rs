//! Bench for the VM: end-to-end pipeline cost (compile + run) and the
//! runtime cost of checks inside the VM, comparing a fully-private
//! program against the same computation on dynamic (checked) data.
//!
//! Runs on the sharc-testkit bench harness (`harness = false`);
//! results land in `target/BENCH_interp.json`.

use sharc_interp::{compile_and_run, VmConfig};
use sharc_testkit::Bench;

const PRIVATE_SRC: &str = "
void main() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 20000; i++) acc = acc + i % 7;
    print(acc);
}
";

const DYNAMIC_SRC: &str = "
void worker(int * d) { int i; for (i = 0; i < 10000; i++) *d = *d + i % 7; }
void main() {
    int * p;
    int t;
    p = new(int);
    t = spawn(worker, p);
    join(t);
    t = spawn(worker, p);
    join(t);
    print(*p);
}
";

fn main() {
    let mut g = Bench::new("interp");
    g.sample_size(10);
    g.bench("private-loop", || {
        compile_and_run("p.c", PRIVATE_SRC, VmConfig::default()).unwrap()
    });
    g.bench("dynamic-loop", || {
        compile_and_run("d.c", DYNAMIC_SRC, VmConfig::default()).unwrap()
    });
    g.bench("compile-only", || {
        let checked = sharc_core::compile("d.c", DYNAMIC_SRC).unwrap();
        sharc_interp::compile::compile(&checked).unwrap()
    });
    g.finish();
}
