//! Criterion bench for the VM: end-to-end pipeline cost (compile +
//! run) and the runtime cost of checks inside the VM, comparing a
//! fully-private program against the same computation on dynamic
//! (checked) data.

use criterion::{criterion_group, criterion_main, Criterion};
use sharc_interp::{compile_and_run, VmConfig};

const PRIVATE_SRC: &str = "
void main() {
    int i;
    int acc;
    acc = 0;
    for (i = 0; i < 20000; i++) acc = acc + i % 7;
    print(acc);
}
";

const DYNAMIC_SRC: &str = "
void worker(int * d) { int i; for (i = 0; i < 10000; i++) *d = *d + i % 7; }
void main() {
    int * p;
    int t;
    p = new(int);
    t = spawn(worker, p);
    join(t);
    t = spawn(worker, p);
    join(t);
    print(*p);
}
";

fn bench_interp(c: &mut Criterion) {
    let mut g = c.benchmark_group("interp");
    g.sample_size(10);
    g.bench_function("private-loop", |b| {
        b.iter(|| compile_and_run("p.c", PRIVATE_SRC, VmConfig::default()).unwrap())
    });
    g.bench_function("dynamic-loop", |b| {
        b.iter(|| compile_and_run("d.c", DYNAMIC_SRC, VmConfig::default()).unwrap())
    });
    g.bench_function("compile-only", |b| {
        b.iter(|| {
            let checked = sharc_core::compile("d.c", DYNAMIC_SRC).unwrap();
            sharc_interp::compile::compile(&checked).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_interp);
criterion_main!(benches);
