//! Criterion bench for the §4.3 reference-counting ablation: the
//! per-store cost of the naive atomic scheme vs the adapted
//! Levanoni-Petrank scheme, at 1 and 4 threads.

use criterion::{criterion_group, criterion_main, Criterion};
use sharc_bench::rc_workload;
use sharc_runtime::{LpRc, NaiveRc};
use std::sync::Arc;

const STORES: usize = 20_000;
const SLOTS: usize = 512;
const OBJS: usize = 32;

fn bench_rc(c: &mut Criterion) {
    let mut g = c.benchmark_group("refcount");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench_function(format!("naive/{threads}t"), |b| {
            b.iter(|| {
                let rc = Arc::new(NaiveRc::new(threads * SLOTS, OBJS));
                rc_workload(rc, threads, STORES, SLOTS, OBJS, 0)
            })
        });
        g.bench_function(format!("lp/{threads}t"), |b| {
            b.iter(|| {
                let rc = Arc::new(LpRc::new(threads * SLOTS, OBJS, threads));
                rc_workload(rc, threads, STORES, SLOTS, OBJS, 0)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rc);
criterion_main!(benches);
