//! Bench for the §4.3 reference-counting ablation: the per-store
//! cost of the naive atomic scheme vs the adapted Levanoni-Petrank
//! scheme, at 1 and 4 threads.
//!
//! Runs on the sharc-testkit bench harness (`harness = false`);
//! results land in `target/BENCH_refcount.json`.

use sharc_bench::rc_workload;
use sharc_runtime::{LpRc, NaiveRc};
use sharc_testkit::Bench;
use std::sync::Arc;

const STORES: usize = 20_000;
const SLOTS: usize = 512;
const OBJS: usize = 32;

fn main() {
    let mut g = Bench::new("refcount");
    g.sample_size(10);
    for threads in [1usize, 4] {
        g.bench(&format!("naive/{threads}t"), || {
            let rc = Arc::new(NaiveRc::new(threads * SLOTS, OBJS));
            rc_workload(rc, threads, STORES, SLOTS, OBJS, 0)
        });
        g.bench(&format!("lp/{threads}t"), || {
            let rc = Arc::new(LpRc::new(threads * SLOTS, OBJS, threads));
            rc_workload(rc, threads, STORES, SLOTS, OBJS, 0)
        });
    }
    g.finish();
}
