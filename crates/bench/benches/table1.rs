//! Benches backing Table 1: each benchmark's native workload at quick
//! scale, orig vs SharC, so regressions in check cost show up in
//! CI-sized runs. Use the `table1` binary for the full table.
//!
//! Runs on the sharc-testkit bench harness (`harness = false`);
//! results land in `target/BENCH_table1.json`.

use sharc_runtime::{Checked, Unchecked, WideChecked, WideUnchecked};
use sharc_testkit::Bench;
use sharc_workloads::benchmarks::{aget, dillo, fftw, pbzip2, pfscan, stunnel};

fn main() {
    let mut g = Bench::new("table1");
    g.sample_size(10);

    let pf = pfscan_params();
    g.bench("pfscan/orig", || pfscan::run_native::<Unchecked>(&pf));
    g.bench("pfscan/sharc", || pfscan::run_native::<Checked>(&pf));

    let ag = aget_params();
    g.bench("aget/orig", || aget::run_native::<Unchecked>(&ag));
    g.bench("aget/sharc", || aget::run_native::<Checked>(&ag));

    let pb = pbzip2_params();
    g.bench("pbzip2/orig", || pbzip2::run_native(&pb, false));
    g.bench("pbzip2/sharc", || pbzip2::run_native(&pb, true));

    let di = dillo_params();
    g.bench("dillo/orig", || dillo::run_native::<Unchecked>(&di));
    g.bench("dillo/sharc", || dillo::run_native::<Checked>(&di));

    let ff = fftw_params();
    g.bench("fftw/orig", || fftw::run_native(&ff, false));
    g.bench("fftw/sharc", || fftw::run_native(&ff, true));

    let st = stunnel_params();
    g.bench("stunnel/orig", || stunnel::run_native::<WideUnchecked>(&st));
    g.bench("stunnel/sharc", || stunnel::run_native::<WideChecked>(&st));

    g.finish();
}

fn pfscan_params() -> pfscan::Params {
    pfscan::Params {
        fs: sharc_workloads::substrates::filesys::FsConfig {
            n_dirs: 2,
            files_per_dir: 4,
            file_size: 2048,
            ..Default::default()
        },
        workers: 2,
    }
}

fn aget_params() -> aget::Params {
    aget::Params {
        file_size: 32 * 1024,
        chunk: 4096,
        latency: std::time::Duration::from_micros(5),
        workers: 2,
    }
}

fn pbzip2_params() -> pbzip2::Params {
    pbzip2::Params {
        input_size: 64 * 1024,
        block: 16 * 1024,
        workers: 3,
    }
}

fn dillo_params() -> dillo::Params {
    dillo::Params {
        n_hosts: 64,
        n_requests: 64,
        workers: 3,
        latency: std::time::Duration::from_micros(5),
    }
}

fn fftw_params() -> fftw::Params {
    fftw::Params {
        n_transforms: 16,
        size: 512,
        workers: 2,
    }
}

fn stunnel_params() -> stunnel::Params {
    stunnel::Params {
        clients: 8,
        workers: 8,
        messages: 50,
        msg_len: 256,
    }
}
