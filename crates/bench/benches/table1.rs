//! Criterion benches backing Table 1: each benchmark's native
//! workload at quick scale, orig vs SharC, so regressions in check
//! cost show up in CI-sized runs. Use the `table1` binary for the
//! full table.

use criterion::{criterion_group, criterion_main, Criterion};
use sharc_runtime::{Checked, Unchecked};
use sharc_workloads::benchmarks::{aget, dillo, fftw, pbzip2, pfscan, stunnel};

fn bench_table1(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);

    let pf = pfscan_params();
    g.bench_function("pfscan/orig", |b| {
        b.iter(|| pfscan::run_native::<Unchecked>(&pf))
    });
    g.bench_function("pfscan/sharc", |b| {
        b.iter(|| pfscan::run_native::<Checked>(&pf))
    });

    let ag = aget_params();
    g.bench_function("aget/orig", |b| b.iter(|| aget::run_native::<Unchecked>(&ag)));
    g.bench_function("aget/sharc", |b| b.iter(|| aget::run_native::<Checked>(&ag)));

    let pb = pbzip2_params();
    g.bench_function("pbzip2/orig", |b| b.iter(|| pbzip2::run_native(&pb, false)));
    g.bench_function("pbzip2/sharc", |b| b.iter(|| pbzip2::run_native(&pb, true)));

    let di = dillo_params();
    g.bench_function("dillo/orig", |b| b.iter(|| dillo::run_native::<Unchecked>(&di)));
    g.bench_function("dillo/sharc", |b| b.iter(|| dillo::run_native::<Checked>(&di)));

    let ff = fftw_params();
    g.bench_function("fftw/orig", |b| b.iter(|| fftw::run_native(&ff, false)));
    g.bench_function("fftw/sharc", |b| b.iter(|| fftw::run_native(&ff, true)));

    let st = stunnel_params();
    g.bench_function("stunnel/orig", |b| {
        b.iter(|| stunnel::run_native::<Unchecked>(&st))
    });
    g.bench_function("stunnel/sharc", |b| {
        b.iter(|| stunnel::run_native::<Checked>(&st))
    });

    g.finish();
}

fn pfscan_params() -> pfscan::Params {
    pfscan::Params {
        fs: sharc_workloads::substrates::filesys::FsConfig {
            n_dirs: 2,
            files_per_dir: 4,
            file_size: 2048,
            ..Default::default()
        },
        workers: 2,
    }
}

fn aget_params() -> aget::Params {
    aget::Params {
        file_size: 32 * 1024,
        chunk: 4096,
        latency: std::time::Duration::from_micros(5),
        workers: 2,
    }
}

fn pbzip2_params() -> pbzip2::Params {
    pbzip2::Params {
        input_size: 64 * 1024,
        block: 16 * 1024,
        workers: 3,
    }
}

fn dillo_params() -> dillo::Params {
    dillo::Params {
        n_hosts: 64,
        n_requests: 64,
        workers: 3,
        latency: std::time::Duration::from_micros(5),
    }
}

fn fftw_params() -> fftw::Params {
    fftw::Params {
        n_transforms: 16,
        size: 512,
        workers: 2,
    }
}

fn stunnel_params() -> stunnel::Params {
    stunnel::Params {
        clients: 3,
        messages: 50,
        msg_len: 256,
    }
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
