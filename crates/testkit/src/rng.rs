//! Deterministic pseudo-random number generation.
//!
//! Two generators, both tiny, fast, and well studied:
//!
//! * [`SplitMix64`] — Steele, Lea & Flood's 64-bit mixer. One `u64`
//!   of state; every seed gives a full-period stream. Used directly
//!   for seed derivation and as the reference generator in tests.
//! * [`Xoshiro256pp`] — Blackman & Vigna's xoshiro256++ 1.0, the
//!   general-purpose workhorse (replaces `rand::rngs::StdRng`).
//!   Seeded from a single `u64` through SplitMix64, exactly as the
//!   reference implementation recommends.
//!
//! The [`Rng`] extension trait provides the `rand`-shaped surface the
//! rest of the workspace uses: `gen`, `gen_range`, `gen_bool`,
//! `fill_bytes`, `shuffle`.

/// Minimal generator core: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Advances a SplitMix64 state and returns the next output.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// SplitMix64 (Steele, Lea & Flood, OOPSLA 2014; public-domain
/// reference by Vigna).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub const fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// `rand`-compatible constructor name.
    pub const fn seed_from_u64(seed: u64) -> Self {
        Self::new(seed)
    }
}

impl RngCore for SplitMix64 {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

/// xoshiro256++ 1.0 (Blackman & Vigna, 2019; public-domain reference
/// implementation at prng.di.unimi.it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the full 256-bit state from one `u64` via SplitMix64,
    /// the procedure the reference implementation recommends.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Xoshiro256pp { s }
    }

    /// Builds a generator from an explicit state (test vectors).
    ///
    /// # Panics
    ///
    /// Panics if the state is all zero (the one forbidden state).
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(s.iter().any(|&w| w != 0), "xoshiro state must be nonzero");
        Xoshiro256pp { s }
    }
}

impl RngCore for Xoshiro256pp {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Uniform sample in `[0, n)` by rejection (no modulo bias).
///
/// # Panics
///
/// Panics if `n == 0`.
#[inline]
pub fn uniform_u64<R: RngCore + ?Sized>(r: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty range");
    if n.is_power_of_two() {
        return r.next_u64() & (n - 1);
    }
    // Accept v < 2^64 - (2^64 mod n), then reduce.
    let rem = (u64::MAX % n + 1) % n;
    let accept_max = u64::MAX - rem;
    loop {
        let v = r.next_u64();
        if v <= accept_max {
            return v % n;
        }
    }
}

/// Types constructible from raw random bits (`rng.gen()`).
pub trait FromRng: Sized {
    /// Draws a uniformly distributed value.
    fn from_rng<R: RngCore + ?Sized>(r: &mut R) -> Self;
}

macro_rules! from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            #[inline]
            fn from_rng<R: RngCore + ?Sized>(r: &mut R) -> Self {
                r.next_u64() as $t
            }
        }
    )*};
}
from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for u128 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(r: &mut R) -> Self {
        ((r.next_u64() as u128) << 64) | r.next_u64() as u128
    }
}

impl FromRng for i128 {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(r: &mut R) -> Self {
        u128::from_rng(r) as i128
    }
}

impl FromRng for bool {
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(r: &mut R) -> Self {
        r.next_u64() & 1 == 1
    }
}

impl FromRng for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(r: &mut R) -> Self {
        (r.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn from_rng<R: RngCore + ?Sized>(r: &mut R) -> Self {
        (r.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Uniform sample in `[lo, hi)`.
    fn sample<R: RngCore + ?Sized>(r: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! sample_unsigned {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(r: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                lo + uniform_u64(r, (hi - lo) as u64) as $t
            }
        }
    )*};
}
sample_unsigned!(u8, u16, u32, u64, usize);

macro_rules! sample_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(r: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "empty range");
                let span = (hi as $u).wrapping_sub(lo as $u);
                lo.wrapping_add(uniform_u64(r, span as u64) as $t)
            }
        }
    )*};
}
sample_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleUniform for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(r: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "empty range");
        lo + f64::from_rng(r) * (hi - lo)
    }
}

/// The `rand`-shaped convenience surface, implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniformly distributed value of an inferred type.
    #[inline]
    fn gen<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Uniform sample from a half-open range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self, range.start, range.end)
    }

    /// `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::from_rng(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = uniform_u64(self, i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// The base seed for a reproducible run: `SHARC_TEST_SEED` from the
/// environment (decimal or `0x`-prefixed hex), else `default`.
pub fn seed_from_env(default: u64) -> u64 {
    match std::env::var("SHARC_TEST_SEED") {
        Ok(v) => parse_seed(&v)
            .unwrap_or_else(|| panic!("SHARC_TEST_SEED={v:?} is not a decimal or 0x-hex u64")),
        Err(_) => default,
    }
}

/// Parses a decimal or `0x`-prefixed hex `u64`.
pub fn parse_seed(v: &str) -> Option<u64> {
    let v = v.trim();
    if let Some(hex) = v.strip_prefix("0x").or_else(|| v.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        v.parse().ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // Reference vectors: the first outputs of the public-domain
    // splitmix64.c with x = 0.
    #[test]
    fn splitmix64_reference_vector_seed0() {
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(r.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(r.next_u64(), 0x06C4_5D18_8009_454F);
        assert_eq!(r.next_u64(), 0xF88B_B8A8_724C_81EC);
        assert_eq!(r.next_u64(), 0x1B39_896A_51A8_749B);
    }

    #[test]
    fn xoshiro_first_output_from_unit_state() {
        // With s = {1, 2, 3, 4}: result = rotl(1 + 4, 23) + 1
        //                               = 5 * 2^23 + 1 = 41943041.
        let mut r = Xoshiro256pp::from_state([1, 2, 3, 4]);
        assert_eq!(r.next_u64(), 41_943_041);
    }

    #[test]
    fn uniform_is_in_range_and_unbiased_enough() {
        let mut r = Xoshiro256pp::seed_from_u64(7);
        let mut counts = [0u32; 7];
        for _ in 0..7000 {
            counts[r.gen_range(0..7usize)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "{counts:?}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Xoshiro256pp::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut r = SplitMix64::new(3);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn parse_seed_formats() {
        assert_eq!(parse_seed("42"), Some(42));
        assert_eq!(parse_seed("0xff"), Some(255));
        assert_eq!(parse_seed("0XFF"), Some(255));
        assert_eq!(parse_seed("nope"), None);
    }
}
