//! Generator combinators with integrated shrinking.
//!
//! A [`Gen<T>`] produces a [`Tree<T>`]: the generated value plus a
//! lazily-expanded forest of *smaller* candidate values. Because the
//! shrink candidates live in the tree, they survive [`Gen::map`] —
//! mapping a generator maps every shrink candidate too, so shrinking
//! always happens in the source domain (the hedgehog design, vs
//! quickcheck's type-directed shrinking which `map` loses).
//!
//! The property runner ([`crate::prop`]) walks the tree greedily:
//! descend into the first failing child, repeat until no child fails.

use crate::rng::{uniform_u64, Xoshiro256pp};
use std::rc::Rc;

/// A generated value plus its lazily-computed shrink candidates.
pub struct Tree<T: 'static> {
    /// The generated value.
    pub value: T,
    children: Rc<dyn Fn() -> Vec<Tree<T>>>,
}

impl<T: Clone> Clone for Tree<T> {
    fn clone(&self) -> Self {
        Tree {
            value: self.value.clone(),
            children: Rc::clone(&self.children),
        }
    }
}

impl<T: Clone + 'static> Tree<T> {
    /// A value with no shrink candidates.
    pub fn leaf(value: T) -> Self {
        Tree {
            value,
            children: Rc::new(Vec::new),
        }
    }

    /// A value with lazily-computed shrink candidates.
    pub fn with_children(value: T, children: impl Fn() -> Vec<Tree<T>> + 'static) -> Self {
        Tree {
            value,
            children: Rc::new(children),
        }
    }

    /// Expands the shrink candidates (ordered most-aggressive first).
    pub fn children(&self) -> Vec<Tree<T>> {
        (self.children)()
    }

    /// Maps the whole tree through `f`.
    pub fn map<U: Clone + 'static>(&self, f: &Rc<dyn Fn(&T) -> U>) -> Tree<U> {
        let value = f(&self.value);
        let children = Rc::clone(&self.children);
        let f = Rc::clone(f);
        Tree {
            value,
            children: Rc::new(move || children().iter().map(|c| c.map(&f)).collect()),
        }
    }
}

/// The shared generation function inside a [`Gen`]: RNG in, shrink
/// tree out.
type GenFn<T> = Rc<dyn Fn(&mut Xoshiro256pp) -> Tree<T>>;

/// A random generator of shrink trees.
pub struct Gen<T: 'static> {
    run: GenFn<T>,
}

impl<T> Clone for Gen<T> {
    fn clone(&self) -> Self {
        Gen {
            run: Rc::clone(&self.run),
        }
    }
}

impl<T: Clone + 'static> Gen<T> {
    /// Wraps a raw generation function.
    pub fn new(f: impl Fn(&mut Xoshiro256pp) -> Tree<T> + 'static) -> Self {
        Gen { run: Rc::new(f) }
    }

    /// Generates one shrink tree.
    pub fn generate(&self, rng: &mut Xoshiro256pp) -> Tree<T> {
        (self.run)(rng)
    }

    /// Always produces `value` (no shrinking).
    pub fn constant(value: T) -> Self {
        Gen::new(move |_| Tree::leaf(value.clone()))
    }

    /// Maps generated values, preserving shrinking.
    pub fn map<U: Clone + 'static>(&self, f: impl Fn(&T) -> U + 'static) -> Gen<U> {
        let run = Rc::clone(&self.run);
        let f: Rc<dyn Fn(&T) -> U> = Rc::new(f);
        Gen::new(move |rng| run(rng).map(&f))
    }
}

/// The shrink tree of an integer: candidates move toward `origin` by
/// jumping there directly, then by halving the distance.
fn int_tree(origin: u64, value: u64) -> Tree<u64> {
    Tree::with_children(value, move || {
        let mut out = Vec::new();
        let mut seen = Vec::new();
        let mut push = |v: u64| {
            if v != value && !seen.contains(&v) {
                seen.push(v);
                out.push(int_tree(origin, v));
            }
        };
        if value != origin {
            push(origin);
            let (lo, hi) = if origin < value {
                (origin, value)
            } else {
                (value, origin)
            };
            let mut d = (hi - lo) / 2;
            while d > 0 {
                push(if origin < value { value - d } else { value + d });
                d /= 2;
            }
        }
        out
    })
}

/// Uniform `u64` in `[lo, hi)`, shrinking toward `lo`.
///
/// # Panics
///
/// Panics if the range is empty.
pub fn u64_range(range: std::ops::Range<u64>) -> Gen<u64> {
    assert!(range.start < range.end, "empty range");
    let (lo, hi) = (range.start, range.end);
    Gen::new(move |rng| int_tree(lo, lo + uniform_u64(rng, hi - lo)))
}

/// Uniform `usize` in `[lo, hi)`, shrinking toward `lo`.
pub fn usize_range(range: std::ops::Range<usize>) -> Gen<usize> {
    u64_range(range.start as u64..range.end as u64).map(|&v| v as usize)
}

/// Uniform `u32` in `[lo, hi)`, shrinking toward `lo`.
pub fn u32_range(range: std::ops::Range<u32>) -> Gen<u32> {
    u64_range(range.start as u64..range.end as u64).map(|&v| v as u32)
}

/// Uniform `u8` (all 256 values), shrinking toward 0.
pub fn byte_any() -> Gen<u8> {
    u64_range(0..256).map(|&v| v as u8)
}

/// Any `u64`, shrinking toward 0.
pub fn u64_any() -> Gen<u64> {
    use crate::rng::RngCore;
    Gen::new(|rng| int_tree(0, rng.next_u64()))
}

/// Uniform `bool`, shrinking `true -> false`.
pub fn bool_any() -> Gen<bool> {
    u64_range(0..2).map(|&v| v == 1)
}

/// Picks one of `items` uniformly, shrinking toward earlier items.
///
/// # Panics
///
/// Panics if `items` is empty.
pub fn choose<T: Clone + 'static>(items: Vec<T>) -> Gen<T> {
    assert!(!items.is_empty(), "choose from empty list");
    let n = items.len();
    usize_range(0..n).map(move |&i| items[i].clone())
}

/// Runs one of `gens`, chosen uniformly. Shrinks within the chosen
/// generator only (choices are not revisited).
///
/// # Panics
///
/// Panics if `gens` is empty.
pub fn one_of<T: Clone + 'static>(gens: Vec<Gen<T>>) -> Gen<T> {
    assert!(!gens.is_empty(), "one_of from empty list");
    Gen::new(move |rng| {
        let i = uniform_u64(rng, gens.len() as u64) as usize;
        gens[i].generate(rng)
    })
}

/// The shrink tree of a vector built from element trees: remove
/// elements (toward `min_len`), then shrink elements in place.
fn vec_tree<T: Clone + 'static>(elems: Vec<Tree<T>>, min_len: usize) -> Tree<Vec<T>> {
    let value: Vec<T> = elems.iter().map(|t| t.value.clone()).collect();
    Tree::with_children(value, move || {
        let mut out = Vec::new();
        // Drop the second half first (aggressive), then single elements.
        if elems.len() > min_len {
            let keep = (elems.len() / 2).max(min_len);
            if keep < elems.len() {
                out.push(vec_tree(elems[..keep].to_vec(), min_len));
            }
            for i in (0..elems.len()).rev() {
                let mut e = elems.clone();
                e.remove(i);
                out.push(vec_tree(e, min_len));
            }
        }
        for i in 0..elems.len() {
            for c in elems[i].children() {
                let mut e = elems.clone();
                e[i] = c;
                out.push(vec_tree(e, min_len));
            }
        }
        out
    })
}

/// A vector of `elem`s with length uniform in `len`, shrinking by
/// removing elements (down to `len.start`) and shrinking elements.
///
/// # Panics
///
/// Panics if the length range is empty.
pub fn vec_of<T: Clone + 'static>(elem: Gen<T>, len: std::ops::Range<usize>) -> Gen<Vec<T>> {
    assert!(len.start < len.end, "empty length range");
    let (lo, hi) = (len.start, len.end);
    Gen::new(move |rng| {
        let n = lo + uniform_u64(rng, (hi - lo) as u64) as usize;
        let elems: Vec<Tree<T>> = (0..n).map(|_| elem.generate(rng)).collect();
        vec_tree(elems, lo)
    })
}

/// A random byte vector with length in `len`.
pub fn byte_vec(len: std::ops::Range<usize>) -> Gen<Vec<u8>> {
    vec_of(byte_any(), len)
}

fn pair_tree<A: Clone + 'static, B: Clone + 'static>(ta: Tree<A>, tb: Tree<B>) -> Tree<(A, B)> {
    let value = (ta.value.clone(), tb.value.clone());
    Tree::with_children(value, move || {
        let mut out = Vec::new();
        for c in ta.children() {
            out.push(pair_tree(c, tb.clone()));
        }
        for c in tb.children() {
            out.push(pair_tree(ta.clone(), c));
        }
        out
    })
}

/// A pair of independent generators; shrinks the left component
/// first, then the right.
pub fn pair<A: Clone + 'static, B: Clone + 'static>(a: Gen<A>, b: Gen<B>) -> Gen<(A, B)> {
    Gen::new(move |rng| {
        let ta = a.generate(rng);
        let tb = b.generate(rng);
        pair_tree(ta, tb)
    })
}

/// A triple of independent generators.
pub fn triple<A: Clone + 'static, B: Clone + 'static, C: Clone + 'static>(
    a: Gen<A>,
    b: Gen<B>,
    c: Gen<C>,
) -> Gen<(A, B, C)> {
    pair(a, pair(b, c)).map(|&(ref x, (ref y, ref z))| (x.clone(), y.clone(), z.clone()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Xoshiro256pp {
        Xoshiro256pp::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn range_values_in_bounds() {
        let g = u64_range(10..20);
        let mut r = rng();
        for _ in 0..200 {
            let t = g.generate(&mut r);
            assert!((10..20).contains(&t.value));
            for c in t.children() {
                assert!((10..20).contains(&c.value));
            }
        }
    }

    #[test]
    fn int_shrink_moves_toward_origin() {
        let t = int_tree(0, 100);
        let kids: Vec<u64> = t.children().iter().map(|c| c.value).collect();
        assert_eq!(kids[0], 0, "first candidate jumps to the origin");
        assert!(kids.iter().all(|&k| k < 100));
    }

    #[test]
    fn map_preserves_shrinking() {
        let g = u64_range(0..100).map(|&v| v * 2);
        let mut r = rng();
        for _ in 0..50 {
            let t = g.generate(&mut r);
            if t.value > 0 {
                let kids = t.children();
                assert!(!kids.is_empty());
                assert!(
                    kids.iter().all(|c| c.value % 2 == 0),
                    "shrinks in source domain"
                );
                return;
            }
        }
        panic!("never generated a nonzero value");
    }

    #[test]
    fn vec_shrink_respects_min_len() {
        let g = vec_of(byte_any(), 2..6);
        let mut r = rng();
        for _ in 0..50 {
            let t = g.generate(&mut r);
            assert!((2..6).contains(&t.value.len()));
            for c in t.children() {
                assert!(c.value.len() >= 2, "{:?}", c.value);
            }
        }
    }

    #[test]
    fn choose_picks_only_listed_items() {
        let g = choose(vec!["a", "b", "c"]);
        let mut r = rng();
        for _ in 0..50 {
            assert!(["a", "b", "c"].contains(&g.generate(&mut r).value));
        }
    }
}
