//! std-only synchronization shims with the `parking_lot` calling
//! convention: `lock()` returns a guard directly (poisoning is
//! unwound through — a panicked critical section re-panics nowhere;
//! we simply take the data, which matches `parking_lot`'s no-poison
//! semantics), and `Condvar::wait` takes `&mut MutexGuard`.
//!
//! Also provides a guard-less [`RawMutex`] (for lock registries that
//! hand lock/unlock to untrusted call sites), scoped threads, and
//! `mpsc` channels — everything the workspace previously pulled from
//! `parking_lot` and `crossbeam`.

use std::ops::{Deref, DerefMut};

pub use std::sync::mpsc;
pub use std::thread::{scope, Scope, ScopedJoinHandle};

/// A mutex whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub struct MutexGuard<'a, T> {
    // `Option` so `Condvar::wait` can temporarily take the inner
    // guard by value.
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Acquires the lock, blocking. Recovers from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(|e| e.into_inner())),
        }
    }

    /// Tries to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard {
                inner: Some(e.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

/// A condition variable for [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Atomically releases the guard's lock and waits; re-acquires
    /// before returning (spurious wakeups possible, as always).
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = self.inner.wait(inner).unwrap_or_else(|e| e.into_inner());
        guard.inner = Some(inner);
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates an unlocked lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires shared access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

/// A guard-less mutex: `lock()` and `unlock()` may be called from
/// different scopes (the shape a lock *registry* needs, where the
/// checked program decides when to release). Replaces
/// `parking_lot::RawMutex`.
#[derive(Debug, Default)]
pub struct RawMutex {
    locked: std::sync::Mutex<bool>,
    cv: std::sync::Condvar,
}

impl RawMutex {
    /// An unlocked mutex.
    pub const fn new() -> Self {
        RawMutex {
            locked: std::sync::Mutex::new(false),
            cv: std::sync::Condvar::new(),
        }
    }

    /// Acquires, blocking until available.
    pub fn lock(&self) {
        let mut locked = self.locked.lock().unwrap_or_else(|e| e.into_inner());
        while *locked {
            locked = self.cv.wait(locked).unwrap_or_else(|e| e.into_inner());
        }
        *locked = true;
    }

    /// Attempts to acquire without blocking.
    pub fn try_lock(&self) -> bool {
        let mut locked = self.locked.lock().unwrap_or_else(|e| e.into_inner());
        if *locked {
            false
        } else {
            *locked = true;
            true
        }
    }

    /// Releases the mutex.
    ///
    /// # Safety
    ///
    /// The caller must own the mutex (a `lock` or successful
    /// `try_lock` without a matching `unlock`). Releasing a mutex
    /// another thread owns breaks mutual exclusion for that lock —
    /// the same contract as `parking_lot::RawMutex::unlock`.
    pub unsafe fn unlock(&self) {
        let mut locked = self.locked.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(*locked, "unlock of an unlocked RawMutex");
        *locked = false;
        drop(locked);
        self.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn mutex_guard_derefs() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_excludes_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..10_000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 40_000);
    }

    #[test]
    fn condvar_signals_waiter() {
        let slot = Arc::new((Mutex::new(None::<u32>), Condvar::new()));
        let s2 = Arc::clone(&slot);
        let h = std::thread::spawn(move || {
            let (m, cv) = &*s2;
            let mut g = m.lock();
            while g.is_none() {
                cv.wait(&mut g);
            }
            g.take().unwrap()
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        {
            let (m, cv) = &*slot;
            *m.lock() = Some(7);
            cv.notify_all();
        }
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    fn raw_mutex_excludes() {
        let m = Arc::new(RawMutex::new());
        let counter = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            let counter = Arc::clone(&counter);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    m.lock();
                    let v = counter.load(Ordering::Relaxed);
                    counter.store(v + 1, Ordering::Relaxed);
                    unsafe { m.unlock() };
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::Relaxed), 4000);
    }

    #[test]
    fn raw_mutex_try_lock() {
        let m = RawMutex::new();
        assert!(m.try_lock());
        assert!(!m.try_lock());
        unsafe { m.unlock() };
        assert!(m.try_lock());
        unsafe { m.unlock() };
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }
}
