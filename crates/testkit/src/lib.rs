//! # sharc-testkit
//!
//! The repository's zero-dependency test and measurement substrate.
//! The build environment is hermetic (no registry access), so
//! everything that `rand`, `proptest`, `criterion`, `serde_json`,
//! `parking_lot`, and `crossbeam` used to provide is re-implemented
//! here on `std` alone:
//!
//! * [`rng`] — deterministic PRNGs ([`rng::SplitMix64`],
//!   [`rng::Xoshiro256pp`]) behind an [`rng::Rng`] trait with
//!   `gen`/`gen_range`/`fill_bytes`/`shuffle`, plus
//!   [`rng::seed_from_env`] so CI runs are reproducible via
//!   `SHARC_TEST_SEED`.
//! * [`gen`] — generator combinators producing lazily-expanded shrink
//!   trees (hedgehog-style integrated shrinking survives `map`).
//! * [`prop`] — the property runner: configurable case count
//!   (`SHARC_TEST_CASES`), greedy shrinking to a local minimum, and
//!   failing-seed persistence ([`prop::Config::persist_to`]).
//!   Use the [`forall!`], [`prop_assert!`], and [`prop_assert_eq!`]
//!   macros.
//! * [`bench`] — warmup + timed-sample micro-benchmarks reporting
//!   median/p95 and emitting `target/BENCH_<group>.json` through the
//!   in-tree JSON writer.
//! * [`json`] — a minimal JSON document model with a pretty emitter
//!   and a recursive-descent parser (round-trip tested).
//! * [`sync`] — std-only shims matching the `parking_lot` calling
//!   convention (guards without poison `Result`s), a guard-less
//!   [`sync::RawMutex`], scoped threads, and `mpsc` channels.
//!
//! Everything is deterministic given a seed; nothing touches the
//! network or the cargo registry.

pub mod bench;
pub mod gen;
pub mod json;
pub mod prop;
pub mod rng;
pub mod stress;
pub mod sync;

pub use bench::Bench;
pub use gen::{Gen, Tree};
pub use json::Json;
pub use prop::Config;
pub use rng::{seed_from_env, Rng, RngCore, SplitMix64, Xoshiro256pp};
pub use stress::BarrierSchedule;
