//! A tiny benchmark harness (criterion replacement).
//!
//! Each [`Bench::bench`] call runs a warmup, then times `samples`
//! invocations of the closure, reporting min/median/p95/max and
//! writing machine-readable results to `target/BENCH_<group>.json`
//! on [`Bench::finish`].
//!
//! Knobs: `SHARC_BENCH_SAMPLES` (sample count), `--quick` on the
//! command line (5 samples), `SHARC_BENCH_OUT` (output directory,
//! default `target`).

use crate::json::Json;
use std::time::Instant;

/// Timing summary for one benchmark, in nanoseconds per invocation.
#[derive(Debug, Clone)]
pub struct Stats {
    pub name: String,
    pub samples: usize,
    pub min_ns: u64,
    pub median_ns: u64,
    pub p95_ns: u64,
    pub max_ns: u64,
    pub mean_ns: u64,
}

/// A benchmark group accumulating [`Stats`].
#[derive(Debug)]
pub struct Bench {
    group: String,
    samples: usize,
    warmup: usize,
    results: Vec<Stats>,
}

impl Bench {
    /// Creates a group. Sample count comes from
    /// `SHARC_BENCH_SAMPLES`, else 5 if `--quick` is on the command
    /// line, else 15.
    pub fn new(group: &str) -> Self {
        let quick = std::env::args().any(|a| a == "--quick");
        let samples = std::env::var("SHARC_BENCH_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(if quick { 5 } else { 15 })
            .max(1);
        Bench {
            group: group.to_string(),
            samples,
            warmup: 2,
            results: Vec::new(),
        }
    }

    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = n.max(1);
        self
    }

    /// Times `f`, one invocation per sample, after `warmup` untimed
    /// invocations. The closure's result is passed through
    /// [`std::hint::black_box`] so the computation is not elided.
    pub fn bench<R, F: FnMut() -> R>(&mut self, name: &str, mut f: F) -> &mut Self {
        for _ in 0..self.warmup {
            std::hint::black_box(f());
        }
        let mut times_ns: Vec<u64> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t = Instant::now();
            std::hint::black_box(f());
            times_ns.push(t.elapsed().as_nanos().min(u64::MAX as u128) as u64);
        }
        times_ns.sort_unstable();
        let n = times_ns.len();
        let stats = Stats {
            name: name.to_string(),
            samples: n,
            min_ns: times_ns[0],
            median_ns: times_ns[n / 2],
            p95_ns: times_ns[(n * 95 / 100).min(n - 1)],
            max_ns: times_ns[n - 1],
            mean_ns: (times_ns.iter().map(|&t| t as u128).sum::<u128>() / n as u128) as u64,
        };
        println!(
            "{:<32} median {:>12}  p95 {:>12}  min {:>12}  ({} samples)",
            format!("{}/{}", self.group, stats.name),
            fmt_ns(stats.median_ns),
            fmt_ns(stats.p95_ns),
            fmt_ns(stats.min_ns),
            stats.samples,
        );
        self.results.push(stats);
        self
    }

    /// Results recorded so far.
    pub fn results(&self) -> &[Stats] {
        &self.results
    }

    /// The JSON document `finish` writes.
    pub fn to_json(&self) -> Json {
        Json::obj([
            ("group", Json::Str(self.group.clone())),
            ("samples_per_bench", Json::Int(self.samples as i64)),
            (
                "benches",
                Json::Arr(
                    self.results
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("name", Json::Str(s.name.clone())),
                                ("samples", Json::Int(s.samples as i64)),
                                ("min_ns", Json::Int(s.min_ns as i64)),
                                ("median_ns", Json::Int(s.median_ns as i64)),
                                ("p95_ns", Json::Int(s.p95_ns as i64)),
                                ("max_ns", Json::Int(s.max_ns as i64)),
                                ("mean_ns", Json::Int(s.mean_ns as i64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Writes `BENCH_<group>.json` into `SHARC_BENCH_OUT` (default
    /// `target/`) and prints where it went.
    pub fn finish(&self) {
        let dir = std::env::var("SHARC_BENCH_OUT").unwrap_or_else(|_| "target".to_string());
        let dir = std::path::PathBuf::from(dir);
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join(format!("BENCH_{}.json", self.group));
        match std::fs::write(&path, self.to_json().render()) {
            Ok(()) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn records_and_serializes_stats() {
        let mut b = Bench::new("unit");
        b.sample_size(5);
        let mut acc = 0u64;
        b.bench("spin", || {
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
            acc
        });
        assert_eq!(b.results().len(), 1);
        let s = &b.results()[0];
        assert!(s.min_ns <= s.median_ns && s.median_ns <= s.p95_ns && s.p95_ns <= s.max_ns);

        // The emitted JSON parses back and carries the same numbers.
        let doc = json::parse(&b.to_json().render()).unwrap();
        assert_eq!(doc.get("group"), Some(&Json::Str("unit".into())));
        let benches = match doc.get("benches") {
            Some(Json::Arr(v)) => v,
            other => panic!("benches missing: {other:?}"),
        };
        assert_eq!(
            benches[0].get("median_ns"),
            Some(&Json::Int(s.median_ns as i64))
        );
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(999), "999 ns");
        assert!(fmt_ns(1_500).contains("µs"));
        assert!(fmt_ns(2_000_000).contains("ms"));
        assert!(fmt_ns(3_000_000_000).contains(" s"));
    }
}
