//! Barrier-schedule stress harness: make racing operations actually
//! race.
//!
//! Property tests over interleavings ([`crate::prop`]) explore
//! *logical* schedules; this module drives *real* threads into
//! simultaneous conflict windows. The recipe is the standard one for
//! exercising lock-free protocols: align every participant at a
//! [`std::sync::Barrier`] immediately before the contended operation
//! (so the OS cannot accidentally serialize them by scheduling),
//! optionally jitter each thread by a few seeded spin cycles (so the
//! post-barrier interleaving differs between rounds), and repeat for
//! many rounds. Each round is fenced by a second barrier so rounds
//! cannot bleed into one another — an assertion about round `r` is an
//! assertion about exactly the operations of round `r`.
//!
//! The harness is generic over the contended operation: participants
//! get a [`Ctx`] with their index, the round number, a per-(round,
//! thread) seeded RNG, and the [`Ctx::sync`]/[`Ctx::stagger`]
//! phase-control primitives. Results come back as a `[round][thread]`
//! matrix, which is the shape conflict-counting assertions want
//! ("at least one participant in this round observed the race").

use crate::rng::{splitmix64, RngCore, Xoshiro256pp};
use std::sync::Barrier;

/// A fixed roster of threads re-racing a closure for many rounds.
#[derive(Debug, Clone, Copy)]
pub struct BarrierSchedule {
    /// Number of participant threads (spawned once, reused across
    /// rounds).
    pub threads: usize,
    /// Number of aligned rounds to run.
    pub rounds: usize,
    /// Base seed; each (round, thread) derives its own RNG stream, so
    /// a run is reproducible given the seed.
    pub seed: u64,
}

impl BarrierSchedule {
    /// A schedule with the given roster size and round count, seeded
    /// from `SHARC_TEST_SEED` when set (the same knob the property
    /// runner uses) so CI can pin an interleaving-exploration run.
    pub fn new(threads: usize, rounds: usize) -> Self {
        BarrierSchedule {
            threads,
            rounds,
            seed: crate::rng::seed_from_env(0x5AC5_57E5),
        }
    }

    /// Runs `f` on every (round, thread) pair with barrier-aligned
    /// round boundaries, returning results as `out[round][thread]`.
    ///
    /// Within a round, `f` decides its own phase structure with
    /// [`Ctx::sync`]: every participant must perform the same number
    /// of `sync` calls per round (it is a full-roster barrier), which
    /// is what lets a test stage "thread 0 clears, then everyone
    /// races" setups deterministically.
    pub fn run<T, F>(&self, f: F) -> Vec<Vec<T>>
    where
        T: Send,
        F: Fn(&mut Ctx) -> T + Sync,
    {
        assert!(self.threads >= 1, "a race needs participants");
        let barrier = Barrier::new(self.threads);
        let mut per_thread: Vec<Vec<T>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..self.threads)
                .map(|t| {
                    let barrier = &barrier;
                    let f = &f;
                    let seed = self.seed;
                    let rounds = self.rounds;
                    scope.spawn(move || {
                        (0..rounds)
                            .map(|round| {
                                let mut state =
                                    seed ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                                let _ = splitmix64(&mut state);
                                let mut ctx = Ctx {
                                    thread: t,
                                    round,
                                    rng: Xoshiro256pp::seed_from_u64(state ^ ((t as u64) << 32)),
                                    barrier,
                                };
                                // Aligned entry: nobody starts round
                                // `r` until everyone finished `r-1`
                                // (the closing sync below).
                                ctx.sync();
                                let out = f(&mut ctx);
                                ctx.sync();
                                out
                            })
                            .collect::<Vec<T>>()
                    })
                })
                .collect();
            per_thread = handles
                .into_iter()
                .map(|h| h.join().expect("stress participant panicked"))
                .collect();
        });
        // Transpose [thread][round] → [round][thread].
        let mut rounds: Vec<Vec<T>> = (0..self.rounds).map(|_| Vec::new()).collect();
        for thread_results in per_thread {
            for (r, v) in thread_results.into_iter().enumerate() {
                rounds[r].push(v);
            }
        }
        rounds
    }
}

/// A participant's view of one round.
pub struct Ctx<'a> {
    /// Participant index, `0..threads`.
    pub thread: usize,
    /// Round index, `0..rounds`.
    pub round: usize,
    /// Seeded per-(round, thread) stream for schedule jitter and
    /// data-choice randomness.
    pub rng: Xoshiro256pp,
    barrier: &'a Barrier,
}

impl Ctx<'_> {
    /// Full-roster barrier: returns only once every participant of
    /// the round has arrived. Every participant must call `sync` the
    /// same number of times per round.
    pub fn sync(&self) {
        self.barrier.wait();
    }

    /// Burns a seeded number of spin cycles (up to `max_spins`), so
    /// the instants at which aligned participants hit the contended
    /// operation differ from round to round — without this, the
    /// post-barrier interleaving is often the same one every time.
    pub fn stagger(&mut self, max_spins: u32) {
        if max_spins == 0 {
            return;
        }
        let spins = self.rng.next_u64() % (max_spins as u64 + 1);
        for _ in 0..spins {
            std::hint::spin_loop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn every_pair_runs_and_lands_in_its_slot() {
        let sched = BarrierSchedule {
            threads: 4,
            rounds: 8,
            seed: 7,
        };
        let out = sched.run(|ctx| (ctx.round, ctx.thread));
        assert_eq!(out.len(), 8);
        for (r, row) in out.iter().enumerate() {
            assert_eq!(row.len(), 4);
            for (t, &(rr, tt)) in row.iter().enumerate() {
                assert_eq!((rr, tt), (r, t));
            }
        }
    }

    #[test]
    fn rounds_are_fenced() {
        // The closing barrier means no participant can observe a
        // counter value from a later round: each round adds exactly
        // `threads`, and every participant reads a value within the
        // current round's window.
        let counter = AtomicU64::new(0);
        let sched = BarrierSchedule {
            threads: 3,
            rounds: 16,
            seed: 11,
        };
        let out = sched.run(|ctx| {
            ctx.stagger(100);
            counter.fetch_add(1, Ordering::Relaxed);
            let seen = counter.load(Ordering::Relaxed);
            (ctx.round, seen)
        });
        for (r, row) in out.iter().enumerate() {
            for &(_, seen) in row {
                let lo = (r as u64) * 3 + 1;
                let hi = (r as u64 + 1) * 3;
                assert!(
                    (lo..=hi).contains(&seen),
                    "round {r} observed {seen}, outside [{lo}, {hi}]"
                );
            }
        }
    }

    #[test]
    fn same_seed_same_jitter_streams() {
        let sched = BarrierSchedule {
            threads: 2,
            rounds: 4,
            seed: 42,
        };
        let draws = |s: &BarrierSchedule| s.run(|ctx| ctx.rng.next_u64());
        assert_eq!(draws(&sched), draws(&sched), "reproducible given the seed");
    }
}
