//! A minimal JSON document model: pretty emitter + recursive-descent
//! parser. Replaces `serde`/`serde_json` for the benchmark reports,
//! where documents are small, hand-built, and schema-free.

/// A JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Integers are kept exact (separately from floats) so counters
    /// round-trip without precision loss.
    Int(i64),
    Float(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => out.push_str(&i.to_string()),
            Json::Float(f) => {
                if f.is_finite() {
                    let s = format!("{f}");
                    out.push_str(&s);
                    // Keep floats recognizable as floats.
                    if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_escaped(out, k);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, n: usize) {
    for _ in 0..n {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error.
pub fn parse(input: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, String> {
        Err(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected '{}'", b as char))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err("invalid literal")
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return self.err("expected ',' or ']'"),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((k, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return self.err("expected ',' or '}'"),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.bytes.len() {
                                return self.err("truncated \\u escape");
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            s.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "invalid UTF-8".to_string())?;
                    let c = rest.chars().next().expect("non-empty");
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        if is_float {
            text.parse()
                .map(Json::Float)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        } else {
            text.parse()
                .map(Json::Int)
                .map_err(|e| format!("bad number {text:?}: {e}"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_parse_round_trip() {
        let doc = Json::obj([
            ("name", Json::Str("table1".into())),
            ("ok", Json::Bool(true)),
            ("missing", Json::Null),
            ("count", Json::Int(-42)),
            ("ratio", Json::Float(0.875)),
            (
                "rows",
                Json::Arr(vec![
                    Json::obj([("a", Json::Int(1)), ("b", Json::Str("x\n\"y\"".into()))]),
                    Json::Arr(vec![]),
                    Json::Obj(vec![]),
                ]),
            ),
        ]);
        let text = doc.render();
        assert_eq!(parse(&text).unwrap(), doc);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = parse(r#"{"s": "a\tbA\\", "t": "héllo"}"#).unwrap();
        assert_eq!(v.get("s"), Some(&Json::Str("a\tbA\\".into())));
        assert_eq!(v.get("t"), Some(&Json::Str("héllo".into())));
    }

    #[test]
    fn integers_stay_exact() {
        let v = parse("9007199254740993").unwrap();
        assert_eq!(v, Json::Int(9_007_199_254_740_993));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("trueX").is_err());
    }

    #[test]
    fn floats_render_as_floats() {
        assert_eq!(Json::Float(2.0).render(), "2.0\n");
        assert_eq!(parse("2.0").unwrap(), Json::Float(2.0));
    }
}
