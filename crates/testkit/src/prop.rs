//! The property runner: seeded case generation, greedy integrated
//! shrinking, and failing-seed persistence.
//!
//! ```
//! use sharc_testkit::{forall, prop_assert, prop_assert_eq};
//! use sharc_testkit::gen;
//!
//! forall!("addition_commutes", gen::pair(gen::u64_range(0..100), gen::u64_range(0..100)),
//!     |&(a, b)| {
//!         prop_assert_eq!(a + b, b + a);
//!     });
//! ```
//!
//! Reproducibility: every case draws from an rng seeded by
//! `derive_case_seed(base_seed, case_index)`, so a run is fully
//! determined by the base seed (`SHARC_TEST_SEED`, default
//! [`DEFAULT_SEED`]) — two runs with the same seed generate the same
//! case sequence. On failure the runner reports (and optionally
//! persists) the *case seed*, which replays just that case.

use crate::gen::{Gen, Tree};
use crate::rng::{splitmix64, Xoshiro256pp};
use std::fmt::Debug;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

/// The default base seed when `SHARC_TEST_SEED` is unset.
pub const DEFAULT_SEED: u64 = 0x5AC5_0001;

/// Runner configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Random cases to run (`SHARC_TEST_CASES` overrides).
    pub cases: u32,
    /// Base seed for the whole run (`SHARC_TEST_SEED` overrides).
    pub seed: u64,
    /// Cap on property evaluations spent shrinking.
    pub max_shrink_steps: u32,
    /// If set, failing case seeds are appended here and replayed
    /// (before random cases) on the next run.
    pub regressions: Option<PathBuf>,
}

impl Config {
    /// `cases` and `seed` from the environment, defaults otherwise.
    pub fn from_env() -> Self {
        let cases = std::env::var("SHARC_TEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        Config {
            cases,
            seed: crate::rng::seed_from_env(DEFAULT_SEED),
            max_shrink_steps: 4096,
            regressions: None,
        }
    }

    /// Overrides the case count.
    pub fn with_cases(mut self, cases: u32) -> Self {
        self.cases = cases;
        self
    }

    /// Enables failing-seed persistence to `path`.
    pub fn persist_to(mut self, path: impl Into<PathBuf>) -> Self {
        self.regressions = Some(path.into());
        self
    }
}

impl Default for Config {
    fn default() -> Self {
        Config::from_env()
    }
}

/// The per-case seed: mixes the case index into the base seed so
/// each case has an independent, individually-replayable stream.
pub fn derive_case_seed(base: u64, case: u32) -> u64 {
    let mut s = base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    splitmix64(&mut s)
}

fn eval<T, F>(prop: &F, value: &T) -> Option<String>
where
    F: Fn(&T) -> Result<(), String>,
{
    match catch_unwind(AssertUnwindSafe(|| prop(value))) {
        Ok(Ok(())) => None,
        Ok(Err(msg)) => Some(msg),
        Err(payload) => Some(panic_message(&payload)),
    }
}

fn panic_message(payload: &Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        format!("panicked: {s}")
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!("panicked: {s}")
    } else {
        "panicked (non-string payload)".to_string()
    }
}

/// Greedily shrinks a failing tree: repeatedly descend into the
/// first failing child until no child fails or the step budget is
/// exhausted. Returns the local minimum, its failure message, and
/// the evaluations spent.
fn shrink<T, F>(root: Tree<T>, first_msg: String, prop: &F, max_steps: u32) -> (T, String, u32)
where
    T: Clone + 'static,
    F: Fn(&T) -> Result<(), String>,
{
    let mut cur = root;
    let mut msg = first_msg;
    let mut steps = 0u32;
    'descend: loop {
        for child in cur.children() {
            if steps >= max_steps {
                break 'descend;
            }
            steps += 1;
            if let Some(m) = eval(prop, &child.value) {
                cur = child;
                msg = m;
                continue 'descend;
            }
        }
        break;
    }
    (cur.value, msg, steps)
}

fn load_regression_seeds(path: &PathBuf) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| {
            let l = l.trim();
            if l.is_empty() || l.starts_with('#') {
                return None;
            }
            crate::rng::parse_seed(l.split_whitespace().next()?)
        })
        .collect()
}

fn persist_seed(path: &PathBuf, name: &str, case_seed: u64, minimal: &str) {
    let existing = load_regression_seeds(path);
    if existing.contains(&case_seed) {
        return;
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let header = if existing.is_empty() && !path.exists() {
        "# sharc-testkit regression seeds: one case seed per line,\n\
         # replayed before random cases. Keep under version control.\n"
    } else {
        ""
    };
    let mut short = minimal.replace('\n', " ");
    short.truncate(160);
    let line = format!("{header}0x{case_seed:016x} # {name}: shrinks to {short}\n");
    use std::io::Write;
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    {
        let _ = f.write_all(line.as_bytes());
    }
}

/// Runs `prop` against values from `gen` under `cfg`.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first failing
/// case, after shrinking it to a local minimum. The message includes
/// the case seed needed to replay the failure.
pub fn check_with<T, F>(cfg: &Config, name: &str, gen: &Gen<T>, prop: F)
where
    T: Clone + Debug + 'static,
    F: Fn(&T) -> Result<(), String>,
{
    let run_case = |case_seed: u64, label: &str| {
        let mut rng = Xoshiro256pp::seed_from_u64(case_seed);
        let tree = gen.generate(&mut rng);
        if let Some(msg) = eval(&prop, &tree.value) {
            let original = format!("{:?}", tree.value);
            let (min, min_msg, steps) = shrink(tree, msg, &prop, cfg.max_shrink_steps);
            if let Some(path) = &cfg.regressions {
                persist_seed(path, name, case_seed, &format!("{min:?}"));
            }
            panic!(
                "property '{name}' failed ({label}, case seed 0x{case_seed:016x}, \
                 base seed 0x{:x}; replay with SHARC_TEST_SEED)\n\
                 minimal failing input after {steps} shrink evals:\n  {min:#?}\n\
                 failure: {min_msg}\noriginal input: {original}",
                cfg.seed
            );
        }
    };

    if let Some(path) = &cfg.regressions {
        for seed in load_regression_seeds(path) {
            run_case(seed, "persisted regression");
        }
    }
    for case in 0..cfg.cases {
        run_case(derive_case_seed(cfg.seed, case), &format!("case {case}"));
    }
}

/// [`check_with`] under [`Config::from_env`].
pub fn check<T, F>(name: &str, gen: &Gen<T>, prop: F)
where
    T: Clone + Debug + 'static,
    F: Fn(&T) -> Result<(), String>,
{
    check_with(&Config::from_env(), name, gen, prop);
}

/// Runs a property over generated inputs; the body uses
/// [`prop_assert!`]/[`prop_assert_eq!`] (or plain `assert!`, caught
/// via unwind) to signal failure.
#[macro_export]
macro_rules! forall {
    ($name:expr, $cfg:expr, $gen:expr, |$x:pat_param| $body:block) => {
        $crate::prop::check_with(&$cfg, $name, &$gen, |$x| {
            $body;
            ::std::result::Result::Ok(())
        })
    };
    ($name:expr, $gen:expr, |$x:pat_param| $body:block) => {
        $crate::forall!($name, $crate::prop::Config::from_env(), $gen, |$x| $body)
    };
}

/// Property-scoped assertion: returns an `Err` (shrinkable failure)
/// instead of unwinding.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} ({}:{})", stringify!($cond), file!(), line!()
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} — {} ({}:{})",
                stringify!($cond), format!($($fmt)+), file!(), line!()
            ));
        }
    };
}

/// Property-scoped equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        if left != right {
            return ::std::result::Result::Err(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?} ({}:{})",
                stringify!($a),
                stringify!($b),
                left,
                right,
                file!(),
                line!()
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn passing_property_runs_all_cases() {
        let cfg = Config {
            cases: 32,
            seed: 1,
            max_shrink_steps: 100,
            regressions: None,
        };
        check_with(&cfg, "tautology", &gen::u64_range(0..100), |_| Ok(()));
    }

    #[test]
    fn same_seed_same_case_sequence() {
        let collect = |seed: u64| {
            let mut seen = Vec::new();
            let cfg = Config {
                cases: 20,
                seed,
                max_shrink_steps: 0,
                regressions: None,
            };
            // Record via interior mutability inside the property.
            let seen_cell = std::cell::RefCell::new(&mut seen);
            check_with(&cfg, "record", &gen::u64_range(0..1_000_000), |&v| {
                seen_cell.borrow_mut().push(v);
                Ok(())
            });
            seen
        };
        assert_eq!(collect(42), collect(42));
        assert_ne!(collect(42), collect(43));
    }

    #[test]
    fn shrinking_reaches_local_minimum() {
        // Fails for v >= 17: greedy shrink must land exactly on 17.
        let prop = |v: &u64| -> Result<(), String> {
            if *v >= 17 {
                Err("too big".into())
            } else {
                Ok(())
            }
        };
        let mut rng = Xoshiro256pp::seed_from_u64(99);
        let g = gen::u64_range(0..100_000);
        // Find a failing tree, then shrink it.
        loop {
            let t = g.generate(&mut rng);
            if t.value >= 17 {
                let (min, _, steps) = shrink(t, "seed".into(), &prop, 10_000);
                assert_eq!(min, 17, "greedy integer shrink finds the boundary");
                assert!(steps > 0);
                break;
            }
        }
    }

    #[test]
    fn shrinking_terminates_within_budget() {
        let prop = |_: &Vec<u8>| -> Result<(), String> { Err("always fails".into()) };
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let t = gen::byte_vec(0..64).generate(&mut rng);
        let (min, _, steps) = shrink(t, "x".into(), &prop, 500);
        assert!(steps <= 500);
        assert!(min.len() <= 64);
    }

    #[test]
    #[should_panic(expected = "minimal failing input")]
    fn failing_property_panics_with_shrunk_input() {
        let cfg = Config {
            cases: 64,
            seed: 7,
            max_shrink_steps: 4096,
            regressions: None,
        };
        check_with(&cfg, "fails_high", &gen::u64_range(0..10_000), |&v| {
            if v > 100 {
                Err(format!("{v} > 100"))
            } else {
                Ok(())
            }
        });
    }

    #[test]
    fn panicking_property_is_caught_and_shrunk() {
        let cfg = Config {
            cases: 64,
            seed: 11,
            max_shrink_steps: 4096,
            regressions: None,
        };
        let result = catch_unwind(AssertUnwindSafe(|| {
            check_with(&cfg, "unwinds", &gen::u64_range(0..10_000), |&v| {
                assert!(v <= 100, "{v} too big");
                Ok(())
            });
        }));
        let msg = panic_message(&result.unwrap_err());
        assert!(msg.contains("101"), "shrinks to the boundary: {msg}");
    }

    #[test]
    fn regression_seeds_round_trip() {
        let dir = std::env::temp_dir().join("sharc-testkit-prop-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("seeds.txt");
        persist_seed(&path, "p", 0xABCD, "Minimal { v: 3 }");
        persist_seed(&path, "p", 0x1234, "Minimal { v: 4 }");
        persist_seed(&path, "p", 0xABCD, "duplicate ignored");
        assert_eq!(load_regression_seeds(&path), vec![0xABCD, 0x1234]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
