//! The `sharc` command-line tool: check and run MiniC programs with
//! SharC's sharing-strategy verification, the way the paper's tool
//! wraps a C compiler.
//!
//! ```text
//! sharc check  <file.c>           # parse, infer, type-check; print reports
//! sharc infer  <file.c>           # print the fully-inferred program (Fig. 2 style)
//! sharc run    <file.c> [--seed N] [--trials N] [--stop-on-error]
//!                       [--detector sharc|eraser|vc] [--explain-elision]
//! sharc native <pfscan|handoff|pbzip2|aget|dillo|fftw|stunnel>
//!              [--detector sharc|eraser|vc] [--trace-out <path>]
//!              [--online [--ring-cap N]]
//! sharc replay <trace-file>       [--detector sharc|eraser|vc] [--jobs N]
//! sharc trace convert <in> <out>  [--lower]
//! sharc trace info <trace-file>
//! ```
//!
//! `--detector` selects which engine judges the execution: SharC's
//! own runtime checks (default), or one of the §6.2 baselines
//! (Eraser locksets, vector clocks) replaying the trace of the very
//! same seeded run through the unified `CheckBackend` interface.
//!
//! `native` runs a *real-thread* workload instead of a MiniC program:
//! the execution records its `CheckEvent` trace and the selected
//! detector judges that single native run through the same replay
//! interface — `sharc native handoff --detector eraser` shows the
//! lockset false positive on an ownership transfer that
//! `--detector sharc` accepts. `--trace-out` saves the recorded
//! trace as line-oriented text — or as the binary v4 `.sbt` format
//! when the path ends in `.sbt` — and `replay` re-judges a saved
//! trace offline (sniffing text vs binary by magic) — the verdict is
//! a function of the file alone, so the same execution can be
//! interrogated by every engine long after the threads are gone.
//! `replay --jobs N` shards the granule space across N worker
//! threads by epoch region; the merged verdict is bit-identical to
//! the sequential replay for every detector.
//!
//! `trace convert` rewrites a trace between the text and binary
//! formats (output format chosen by the `.sbt` extension); `--lower`
//! additionally expands range events to per-granule point events —
//! the v1 vocabulary, for feeding old readers. `trace info` prints a
//! file's version, size, per-kind event counts, widest tid, granule
//! span, and bytes/event without judging it.
//!
//! `--online` switches `native` from record-then-replay to the
//! streaming pipeline: events flow through per-thread bounded rings
//! drained by an epoch-flip collector, so the verdict is produced
//! concurrently with the run inside a fixed memory budget
//! (`--ring-cap` events per ring buffer, default 4096). The exit code
//! and the conflicts are the same as the replay path on the same
//! seeded run; the report additionally shows peak resident events
//! and how many collector drains it took.

use sharc::prelude::*;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  sharc check <file.c>\n  sharc infer <file.c>\n  \
         sharc run <file.c> [--seed N] [--trials N] [--stop-on-error] \
         [--detector sharc|eraser|vc] [--explain-elision]\n  \
         sharc native <pfscan|handoff|pbzip2|aget|dillo|fftw|stunnel> \
         [--detector sharc|eraser|vc] [--trace-out <path>] \
         [--online [--ring-cap N]]\n  \
         sharc replay <trace-file> [--detector sharc|eraser|vc] [--jobs N]\n  \
         sharc trace convert <in> <out> [--lower]\n  \
         sharc trace info <trace-file>"
    );
    ExitCode::from(2)
}

/// Parses a `--detector <kind>` pair at `args[i]`, advancing `i`.
fn parse_detector(args: &[String], i: &mut usize) -> Result<DetectorKind, ()> {
    match args.get(*i + 1).map(|v| v.parse()) {
        Some(Ok(d)) => {
            *i += 2;
            Ok(d)
        }
        Some(Err(e)) => {
            eprintln!("sharc: {e}");
            Err(())
        }
        None => {
            eprintln!("sharc: --detector needs a value");
            Err(())
        }
    }
}

/// `sharc native <workload> [--detector …] [--trace-out <path>]`: run
/// a real-thread workload, record its event trace, judge it with one
/// engine, optionally saving the trace for offline replay.
fn cmd_native(args: &[String]) -> ExitCode {
    let Some(workload) = args.first() else {
        return usage();
    };
    let workload: NativeWorkload = match workload.parse() {
        Ok(w) => w,
        Err(e) => {
            eprintln!("sharc: {e}");
            return usage();
        }
    };
    let mut detector = DetectorKind::Sharc;
    let mut trace_out: Option<String> = None;
    let mut online = false;
    let mut ring_cap = sharc::DEFAULT_RING_CAP;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--detector" => match parse_detector(args, &mut i) {
                Ok(d) => detector = d,
                Err(()) => return usage(),
            },
            "--trace-out" => {
                let Some(path) = args.get(i + 1) else {
                    eprintln!("sharc: --trace-out needs a path");
                    return usage();
                };
                trace_out = Some(path.clone());
                i += 2;
            }
            "--online" => {
                online = true;
                i += 1;
            }
            "--ring-cap" => {
                match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => ring_cap = n,
                    _ => {
                        eprintln!("sharc: --ring-cap needs a positive integer");
                        return usage();
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("sharc: unknown flag {other}");
                return usage();
            }
        }
    }
    if online {
        if trace_out.is_some() {
            eprintln!("sharc: --online streams events into the collector; there is no trace to save (drop --trace-out)");
            return usage();
        }
        let streamed = sharc::run_native_streaming(workload, detector, ring_cap);
        let run = &streamed.run;
        println!(
            "{workload:?} (online): {} threads, {} checked / {} total accesses, \
             checksum {:#x}",
            run.threads, run.checked, run.total, run.checksum
        );
        let s = &streamed.stats;
        println!(
            "online: {} events recorded, {} drained over {} collector drains, \
             peak resident {} (ring budget {})",
            s.recorded, s.drained, s.drains, s.peak_resident, s.ring_budget
        );
        return report_conflicts(streamed.detector, &streamed.conflicts);
    }
    let (run, trace) = sharc::native_trace(workload);
    if let Some(path) = &trace_out {
        if let Err(e) = sharc::write_trace_file(std::path::Path::new(path), &trace) {
            eprintln!("sharc: cannot write trace to {path}: {e}");
            return ExitCode::FAILURE;
        }
        println!("{} trace events written to {path}", trace.len());
    }
    let (name, conflicts) = sharc::judge_trace(&trace, detector);
    println!(
        "{workload:?}: {} threads, {} checked / {} total accesses, \
         {} trace events, checksum {:#x}",
        run.threads,
        run.checked,
        run.total,
        trace.len(),
        run.checksum
    );
    report_conflicts(name, &conflicts)
}

/// `sharc replay <trace-file> [--detector …] [--jobs N]`: re-judge a
/// saved trace offline, without re-running any threads. Text or
/// binary input is sniffed by magic; `--jobs N` replays with the
/// region-sharded parallel engine (verdicts unchanged).
fn cmd_replay(args: &[String]) -> ExitCode {
    let Some(path) = args.first() else {
        return usage();
    };
    let mut detector = DetectorKind::Sharc;
    let mut jobs = 1usize;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--detector" => match parse_detector(args, &mut i) {
                Ok(d) => detector = d,
                Err(()) => return usage(),
            },
            "--jobs" => {
                match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) if n > 0 => jobs = n,
                    _ => {
                        eprintln!("sharc: --jobs needs a positive integer");
                        return usage();
                    }
                }
                i += 2;
            }
            other => {
                eprintln!("sharc: unknown flag {other}");
                return usage();
            }
        }
    }
    let trace = match sharc::read_trace_file(std::path::Path::new(path)) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("sharc: {e}");
            return ExitCode::FAILURE;
        }
    };
    if jobs > 1 {
        println!("{path}: {} trace events, {jobs} replay jobs", trace.len());
    } else {
        println!("{path}: {} trace events", trace.len());
    }
    let (name, conflicts) = sharc::judge_trace_jobs(&trace, detector, jobs);
    report_conflicts(name, &conflicts)
}

/// `sharc trace convert <in> <out> [--lower]` and
/// `sharc trace info <trace-file>`: offline trace-file tooling.
fn cmd_trace(args: &[String]) -> ExitCode {
    match args.first().map(String::as_str) {
        Some("convert") => {
            let (Some(input), Some(output)) = (args.get(1), args.get(2)) else {
                eprintln!("sharc: trace convert needs <in> and <out> paths");
                return usage();
            };
            let mut lower = false;
            for flag in &args[3..] {
                match flag.as_str() {
                    "--lower" => lower = true,
                    other => {
                        eprintln!("sharc: unknown flag {other}");
                        return usage();
                    }
                }
            }
            let mut trace = match sharc::read_trace_file(std::path::Path::new(input)) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!("sharc: {e}");
                    return ExitCode::FAILURE;
                }
            };
            if lower {
                trace = sharc::checker::lower_ranges(&trace);
            }
            if let Err(e) = sharc::write_trace_file(std::path::Path::new(output), &trace) {
                eprintln!("sharc: cannot write trace to {output}: {e}");
                return ExitCode::FAILURE;
            }
            println!("{} events converted to {output}", trace.len());
            ExitCode::SUCCESS
        }
        Some("info") => {
            let Some(path) = args.get(1) else {
                eprintln!("sharc: trace info needs a trace file");
                return usage();
            };
            let info = match sharc::trace_file_info(std::path::Path::new(path)) {
                Ok(i) => i,
                Err(e) => {
                    eprintln!("sharc: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let per_event = if info.events > 0 {
                info.bytes as f64 / info.events as f64
            } else {
                0.0
            };
            println!(
                "{path}: {} v{}, {} bytes, {} events ({per_event:.2} bytes/event)",
                info.format, info.version, info.bytes, info.events
            );
            println!(
                "  max tid {}, granule span {}",
                info.max_tid, info.granule_span
            );
            for (kw, n) in &info.counts {
                println!("  {kw:<8} {n}");
            }
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}

fn report_conflicts(detector: &str, conflicts: &[sharc::checker::Conflict]) -> ExitCode {
    if conflicts.is_empty() {
        println!("[{detector}] no conflicts.");
        ExitCode::SUCCESS
    } else {
        for c in conflicts {
            eprintln!("[{detector}] {c}");
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.first().map(String::as_str) == Some("native") {
        return cmd_native(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("replay") {
        return cmd_replay(&args[1..]);
    }
    if args.first().map(String::as_str) == Some("trace") {
        return cmd_trace(&args[1..]);
    }
    let (cmd, path) = match (args.first(), args.get(1)) {
        (Some(c), Some(p)) => (c.as_str(), p.as_str()),
        _ => return usage(),
    };
    let src = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("sharc: cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let name = std::path::Path::new(path)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| path.to_owned());

    let checked = match sharc::check(&name, &src) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{}", e.render(&minic::SourceMap::new(&name, &src)));
            return ExitCode::FAILURE;
        }
    };

    match cmd {
        "check" => {
            let stats = &checked.sharing.stats;
            let el = &checked.elision.summary;
            println!(
                "{}: {} annotations written, {} positions inferred \
                 ({} dynamic), {} dynamic + {} locked check sites, \
                 {} of {} check slots elided ({:.0}%) + {} reads collapsed",
                name,
                checked.annotation_count,
                stats.n_vars,
                stats.n_dynamic,
                checked.instr.n_dynamic_sites,
                checked.instr.n_locked_sites,
                el.elided_slots,
                el.checked_slots,
                el.elided_pct(),
                el.collapsed_reads
            );
            if checked.diags.is_empty() {
                println!("no reports.");
                ExitCode::SUCCESS
            } else {
                println!("{}", checked.render_diags());
                if checked.diags.has_errors() {
                    ExitCode::FAILURE
                } else {
                    ExitCode::SUCCESS
                }
            }
        }
        "infer" => {
            if checked.diags.has_errors() {
                eprintln!("{}", checked.render_diags());
                return ExitCode::FAILURE;
            }
            print!("{}", minic::pretty::program(&checked.program));
            ExitCode::SUCCESS
        }
        "run" => {
            if checked.diags.has_errors() {
                eprintln!("{}", checked.render_diags());
                return ExitCode::FAILURE;
            }
            let mut seed = 0x5ac5u64;
            let mut trials = 1u64;
            let mut stop_on_error = false;
            let mut explain = false;
            let mut detector = DetectorKind::Sharc;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--explain-elision" => {
                        explain = true;
                        i += 1;
                    }
                    "--seed" => {
                        seed = args.get(i + 1).and_then(|v| v.parse().ok()).unwrap_or(seed);
                        i += 2;
                    }
                    "--trials" => {
                        trials = args
                            .get(i + 1)
                            .and_then(|v| v.parse().ok())
                            .unwrap_or(trials);
                        i += 2;
                    }
                    "--stop-on-error" => {
                        stop_on_error = true;
                        i += 1;
                    }
                    "--detector" => {
                        detector = match args.get(i + 1).map(|v| v.parse()) {
                            Some(Ok(d)) => d,
                            Some(Err(e)) => {
                                eprintln!("sharc: {e}");
                                return usage();
                            }
                            None => {
                                eprintln!("sharc: --detector needs a value");
                                return usage();
                            }
                        };
                        i += 2;
                    }
                    other => {
                        eprintln!("sharc: unknown flag {other}");
                        return usage();
                    }
                }
            }
            if explain {
                let el = &checked.elision.summary;
                println!(
                    "elision: {} of {} check slots elided ({:.0}%), \
                     {} reads collapsed",
                    el.elided_slots,
                    el.checked_slots,
                    el.elided_pct(),
                    el.collapsed_reads
                );
                for line in sharc::explain_elision(&checked) {
                    println!("{line}");
                }
            }
            let mut any_reports = false;
            for t in 0..trials {
                let run = match sharc::run_with_detector(
                    &checked,
                    RunConfig {
                        seed: seed + t,
                        stop_on_error,
                        ..RunConfig::default()
                    },
                    detector,
                ) {
                    Ok(o) => o,
                    Err(e) => {
                        eprintln!("{}", e.render(&checked.source_map));
                        return ExitCode::FAILURE;
                    }
                };
                let out = &run.outcome;
                for line in &out.output {
                    println!("{line}");
                }
                match detector {
                    DetectorKind::Sharc => {
                        for r in &out.reports {
                            any_reports = true;
                            eprintln!("{r}");
                        }
                    }
                    _ => {
                        for c in &run.conflicts {
                            any_reports = true;
                            eprintln!("[{}] {c}", run.detector);
                        }
                    }
                }
                if out.status != ExitStatus::Completed {
                    eprintln!("sharc: run ended with {:?} (seed {})", out.status, seed + t);
                }
            }
            if any_reports {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            }
        }
        _ => usage(),
    }
}
