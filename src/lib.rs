//! # SharC — checking data sharing strategies for multithreaded C
//!
//! A from-scratch Rust reproduction of *SharC: Checking Data Sharing
//! Strategies for Multithreaded C* (Anderson, Gay, Ennals, Brewer —
//! PLDI 2008).
//!
//! SharC lets a programmer declare, with lightweight type qualifiers,
//! how each object is shared between threads — `private`, `readonly`,
//! `locked(l)`, `racy`, or `dynamic` — then verifies the declaration
//! with a mix of static analysis and runtime checks. Objects may move
//! between modes with a *sharing cast* whose safety is checked by
//! reference counting.
//!
//! This crate is the facade over the workspace:
//!
//! | crate | paper section | contents |
//! |---|---|---|
//! | [`minic`] | — | the C-like language (lexer, parser, AST, qualifiers) |
//! | [`core`] (`sharc-core`) | §2, §4.1 | elaboration, sharing analysis, checker, instrumentation |
//! | [`interp`] (`sharc-interp`) | §3, §4.2 | the VM executing checked programs; the formal core calculus |
//! | [`runtime`] (`sharc-runtime`) | §4.2–4.3 | native-thread shadow memory, lock logs, reference counting |
//! | [`detectors`] (`sharc-detectors`) | §6.2 | Eraser-lockset and vector-clock baselines |
//! | [`workloads`] (`sharc-workloads`) | §5 | the six Table 1 benchmarks |
//!
//! ## Quick start
//!
//! ```
//! use sharc::prelude::*;
//!
//! let src = r#"
//!     void worker(int * d) { *d = *d + 1; }
//!     void main() {
//!         int * p;
//!         p = new(int);
//!         spawn(worker, p);
//!         spawn(worker, p);
//!         join_all();
//!     }
//! "#;
//!
//! // The pipeline: parse -> infer sharing modes -> check -> instrument.
//! let checked = sharc::check("racy.c", src)?;
//! assert!(!checked.diags.has_errors());
//!
//! // The thread argument was inferred `dynamic`, so its accesses are
//! // checked at runtime — and the two unsynchronized writers race:
//! let outcome = sharc::run(&checked, RunConfig::default())?;
//! assert!(!outcome.reports.is_empty());
//! println!("{}", outcome.reports[0]);
//! // read/write conflict(0x...):
//! //   who(2) *d @ racy.c: 2
//! //   last(3) *d @ racy.c: 2
//! # Ok::<(), minic::Diagnostic>(())
//! ```

pub use minic;
pub use sharc_checker as checker;
pub use sharc_core as core;
pub use sharc_detectors as detectors;
pub use sharc_interp as interp;
pub use sharc_runtime as runtime;
pub use sharc_workloads as workloads;

pub use sharc_core::CheckedProgram;
pub use sharc_interp::{ConflictReport, RunOutcome};

/// VM configuration re-exported as the run configuration.
pub type RunConfig = sharc_interp::VmConfig;

/// Runs the full SharC front-end: parse, elaborate, infer sharing
/// modes, check, and build the instrumentation table.
///
/// # Errors
///
/// Returns the first syntax/layout diagnostic. Sharing-mode errors do
/// not abort: inspect [`CheckedProgram::diags`] (they come with the
/// tool's sharing-cast suggestions).
pub fn check(name: &str, src: &str) -> Result<CheckedProgram, minic::Diagnostic> {
    sharc_core::compile(name, src)
}

/// Executes a checked program on the VM with SharC's runtime checks.
///
/// # Errors
///
/// Returns a diagnostic if the program contains constructs the VM
/// cannot execute (e.g. struct-by-value parameters) or if `checked`
/// still has hard errors.
pub fn run(checked: &CheckedProgram, config: RunConfig) -> Result<RunOutcome, minic::Diagnostic> {
    if checked.diags.has_errors() {
        let first = checked
            .diags
            .iter()
            .find(|d| d.severity == minic::Severity::Error)
            .expect("has_errors implies an error")
            .clone();
        return Err(first);
    }
    let module = sharc_interp::compile::compile(checked)?;
    Ok(sharc_interp::run(&module, &checked.source_map, config))
}

/// Executes a checked program with the elision facts ignored: every
/// check the checker attached runs, including the ones the elision
/// pass proved redundant. This is the reference build the elision
/// differential compares [`run`] against.
///
/// # Errors
///
/// Same failure modes as [`run`].
pub fn run_full_checks(
    checked: &CheckedProgram,
    config: RunConfig,
) -> Result<RunOutcome, minic::Diagnostic> {
    if checked.diags.has_errors() {
        let first = checked
            .diags
            .iter()
            .find(|d| d.severity == minic::Severity::Error)
            .expect("has_errors implies an error")
            .clone();
        return Err(first);
    }
    let module = sharc_interp::compile_full_checks(checked)?;
    Ok(sharc_interp::run(&module, &checked.source_map, config))
}

/// Renders the elision pass's verdict for `checked`, one line per
/// elided or collapsed check slot, each with its machine-checkable
/// reason and source location (`sharc run --explain-elision`).
pub fn explain_elision(checked: &CheckedProgram) -> Vec<String> {
    sharc_core::elide::explain(&checked.elision, &checked.instr, &checked.source_map)
}

/// One-call convenience: [`check`] then [`run`].
///
/// # Errors
///
/// Propagates errors from both phases, including sharing-mode errors.
pub fn check_and_run(
    name: &str,
    src: &str,
    config: RunConfig,
) -> Result<RunOutcome, minic::Diagnostic> {
    let checked = check(name, src)?;
    run(&checked, config)
}

/// Which engine judges a run's checked accesses (`sharc run
/// --detector …`). All three see *the same seeded execution*; that
/// cross-validation-on-one-trace is the workspace's §6.2 methodology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DetectorKind {
    /// SharC's own engine: the VM's built-in checks (the default).
    #[default]
    Sharc,
    /// Eraser's lockset algorithm over the recorded trace.
    Eraser,
    /// Vector-clock happens-before over the recorded trace.
    Vc,
}

impl std::str::FromStr for DetectorKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sharc" => Ok(DetectorKind::Sharc),
            "eraser" => Ok(DetectorKind::Eraser),
            "vc" => Ok(DetectorKind::Vc),
            other => Err(format!(
                "unknown detector `{other}` (expected sharc, eraser, or vc)"
            )),
        }
    }
}

/// Converts a VM trace into the unified [`checker::CheckEvent`]
/// vocabulary: addresses become granules
/// ([`sharc_checker::GRANULE_CELLS`] cells each), frees become ONE
/// [`checker::CheckEvent::RangeFree`] per block, sharing casts become
/// ONE [`checker::CheckEvent::RangeCast`] per referent — the
/// one-operation block hand-off, never an O(granules) expansion.
pub fn trace_to_check_events(trace: &[interp::TraceEvent]) -> Vec<checker::CheckEvent> {
    use checker::CheckEvent as E;
    use interp::TraceEvent as T;
    let gran = sharc_checker::GRANULE_CELLS;
    let granule = |addr: u32| (addr / gran) as usize;
    let mut out = Vec::with_capacity(trace.len());
    for &e in trace {
        match e {
            T::Read { tid, addr } => out.push(E::Read {
                tid: tid as u32,
                granule: granule(addr),
            }),
            T::Write { tid, addr } => out.push(E::Write {
                tid: tid as u32,
                granule: granule(addr),
            }),
            T::Acquire { tid, lock } => out.push(E::Acquire {
                tid: tid as u32,
                lock: lock as usize,
            }),
            T::Release { tid, lock } => out.push(E::Release {
                tid: tid as u32,
                lock: lock as usize,
            }),
            T::Fork { tid, child } => out.push(E::Fork {
                parent: tid as u32,
                child: child as u32,
            }),
            T::Join { tid, child } => out.push(E::Join {
                parent: tid as u32,
                child: child as u32,
            }),
            T::ThreadExit { tid } => out.push(E::ThreadExit { tid: tid as u32 }),
            T::Alloc { addr, size } => {
                for g in granule(addr)..=granule(addr + size.max(1) - 1) {
                    out.push(E::Alloc { granule: g });
                }
            }
            T::Free { addr, size } => {
                // A ranged free: ONE event for the whole block, not
                // one granule reset per covered granule.
                let g0 = granule(addr);
                out.push(E::RangeFree {
                    granule: g0,
                    len: granule(addr + size.max(1) - 1) - g0 + 1,
                });
            }
            T::SharingCast {
                tid,
                addr,
                size,
                refs,
            } => {
                // A ranged cast: the whole referent hands off as one
                // operation, exactly as the VM performs it.
                let g0 = granule(addr);
                out.push(E::RangeCast {
                    tid: tid as u32,
                    granule: g0,
                    len: granule(addr + size.max(1) - 1) - g0 + 1,
                    refs: refs as u64,
                });
            }
        }
    }
    out
}

/// A run judged by a selected detector.
#[derive(Debug)]
pub struct DetectorRun {
    /// The VM execution itself (SharC's own reports live here).
    pub outcome: RunOutcome,
    /// The engine's name, for output headers.
    pub detector: &'static str,
    /// Deduplicated conflicts from the selected engine. For
    /// [`DetectorKind::Sharc`] this mirrors `outcome.reports` (one
    /// entry per report); for the baselines it is the replay result.
    pub conflicts: Vec<checker::Conflict>,
}

/// Runs `checked` once and judges the execution with `kind`: SharC's
/// own checks run inside the VM; the baselines replay the recorded
/// trace of the *same* execution through the [`checker::CheckBackend`]
/// adapters.
///
/// # Errors
///
/// Propagates the same diagnostics as [`run`].
pub fn run_with_detector(
    checked: &CheckedProgram,
    mut config: RunConfig,
    kind: DetectorKind,
) -> Result<DetectorRun, minic::Diagnostic> {
    use sharc_checker::CheckBackend as _;
    if kind != DetectorKind::Sharc {
        config.collect_trace = true;
    }
    let outcome = run(checked, config)?;
    let (detector, conflicts) = match kind {
        DetectorKind::Sharc => {
            let conflicts = outcome
                .reports
                .iter()
                .map(|r| checker::Conflict {
                    kind: match r.kind {
                        interp::ConflictKind::Read => checker::CheckKind::Read,
                        interp::ConflictKind::Write => checker::CheckKind::Write,
                        interp::ConflictKind::Lock => checker::CheckKind::Lock,
                        interp::ConflictKind::OneRef => checker::CheckKind::OneRef,
                    },
                    tid: r.who.tid as u32,
                    granule: (r.addr.0 / sharc_checker::GRANULE_CELLS) as usize,
                })
                .collect();
            ("sharc", conflicts)
        }
        DetectorKind::Eraser => {
            let events = trace_to_check_events(&outcome.trace);
            let mut backend = detectors::BaselineBackend::new(detectors::Eraser::new());
            let raw = checker::replay(&events, &mut backend);
            (backend.name(), dedup_conflicts(raw))
        }
        DetectorKind::Vc => {
            let events = trace_to_check_events(&outcome.trace);
            let mut backend = detectors::BaselineBackend::new(detectors::VcDetector::new());
            let raw = checker::replay(&events, &mut backend);
            (backend.name(), dedup_conflicts(raw))
        }
    };
    Ok(DetectorRun {
        outcome,
        detector,
        conflicts,
    })
}

fn dedup_conflicts(raw: Vec<checker::Conflict>) -> Vec<checker::Conflict> {
    let mut seen = std::collections::HashSet::new();
    raw.into_iter().filter(|c| seen.insert(*c)).collect()
}

/// A *native* (real-thread) workload that can emit a
/// [`checker::CheckEvent`] trace — the native end of the event
/// spine. `sharc native <workload> --detector …` replays one real
/// multithreaded execution through the selected engine, exactly as
/// `sharc run --detector` does for VM executions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NativeWorkload {
    /// The parallel file scanner (Table 1 row 1): read-shared
    /// dynamic-mode buffers, clean under every detector.
    Pfscan,
    /// The §2.1 producer/consumer ownership transfer: clean under
    /// SharC (the cast is its evidence), false-positived by Eraser.
    Handoff,
    /// The parallel block compressor (Table 1 row 3): per-block
    /// `oneref` casts reader → worker → writer. Clean under SharC,
    /// false-positived by Eraser (the blocks are compressed with no
    /// lock held — that is what the private annotation buys).
    Pbzip2,
    /// The download accelerator (Table 1 row 2): workers store whole
    /// chunks into a shared dynamic-mode buffer with ONE ranged write
    /// each, then exit before main's ranged verification sweep. Clean
    /// under SharC (non-overlapping lifetimes), false-positived by
    /// Eraser (no lock ever protects the buffer).
    Aget,
    /// The DNS-prefetch pipeline (Table 1 row 4): workers publish
    /// cache cells with no lock and exit; main renders afterwards.
    /// Clean under SharC and happens-before, false-positived by
    /// Eraser.
    Dillo,
    /// The FFT batch (Table 1 row 5): per-transform descriptor
    /// granules sharing-cast main → worker and written back. Clean
    /// under SharC, false-positived by Eraser.
    Fftw,
    /// The TLS tunnel (Table 1 row 6) at fleet width: 100+ real
    /// worker threads on the sharded wide-tid geometry, handshake
    /// buffers sharing-cast acceptor → worker through the session
    /// lock, ranged per-message sweeps, and `locked(l)` counters.
    /// Clean under SharC and happens-before, false-positived by
    /// Eraser on every hand-off.
    Stunnel,
}

impl std::str::FromStr for NativeWorkload {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pfscan" => Ok(NativeWorkload::Pfscan),
            "handoff" => Ok(NativeWorkload::Handoff),
            "pbzip2" => Ok(NativeWorkload::Pbzip2),
            "aget" => Ok(NativeWorkload::Aget),
            "dillo" => Ok(NativeWorkload::Dillo),
            "fftw" => Ok(NativeWorkload::Fftw),
            "stunnel" => Ok(NativeWorkload::Stunnel),
            other => Err(format!(
                "unknown native workload `{other}` (expected pfscan, handoff, pbzip2, \
                 aget, dillo, fftw or stunnel)"
            )),
        }
    }
}

/// A native execution judged by a selected detector.
#[derive(Debug)]
pub struct NativeDetectorRun {
    /// The workload's run record (checksum, access counters, sizes).
    pub run: workloads::table::NativeRun,
    /// Number of events in the recorded trace.
    pub events: usize,
    /// The engine's name, for output headers.
    pub detector: &'static str,
    /// Deduplicated conflicts from replaying the trace.
    pub conflicts: Vec<checker::Conflict>,
}

/// Runs `workload` once with real threads, recording every
/// [`checker::CheckEvent`] into `sink` — an [`checker::EventLog`]
/// for record-then-replay, or a [`checker::StreamingSink`] for
/// bounded-memory online detection. One dispatcher, one set of
/// quick-scale parameters, both detection modes.
pub fn run_native_events(
    workload: NativeWorkload,
    sink: std::sync::Arc<dyn checker::EventSink>,
) -> workloads::table::NativeRun {
    match workload {
        NativeWorkload::Pfscan => {
            let params =
                workloads::benchmarks::pfscan::Params::scaled(workloads::table::Scale::quick());
            workloads::benchmarks::pfscan::run_with_events(&params, sink)
        }
        NativeWorkload::Handoff => workloads::benchmarks::handoff::run_with_events(
            &workloads::benchmarks::handoff::Params::default(),
            sink,
        ),
        NativeWorkload::Pbzip2 => {
            let params =
                workloads::benchmarks::pbzip2::Params::scaled(workloads::table::Scale::quick());
            workloads::benchmarks::pbzip2::run_with_events(&params, sink)
        }
        NativeWorkload::Aget => {
            let params =
                workloads::benchmarks::aget::Params::scaled(workloads::table::Scale::quick());
            workloads::benchmarks::aget::run_with_events(&params, sink)
        }
        NativeWorkload::Dillo => {
            let params = workloads::benchmarks::dillo::Params {
                latency: std::time::Duration::ZERO,
                ..workloads::benchmarks::dillo::Params::scaled(workloads::table::Scale::quick())
            };
            workloads::benchmarks::dillo::run_with_events(&params, sink)
        }
        NativeWorkload::Fftw => {
            let params =
                workloads::benchmarks::fftw::Params::scaled(workloads::table::Scale::quick());
            workloads::benchmarks::fftw::run_with_events(&params, sink)
        }
        NativeWorkload::Stunnel => {
            let params =
                workloads::benchmarks::stunnel::Params::scaled(workloads::table::Scale::quick());
            workloads::benchmarks::stunnel::run_with_events(&params, sink)
        }
    }
}

/// Runs `workload` once with real threads and returns its run record
/// plus the recorded [`checker::CheckEvent`] trace — the raw material
/// for [`judge_trace`], `--trace-out`, or an offline `sharc replay`.
pub fn native_trace(
    workload: NativeWorkload,
) -> (workloads::table::NativeRun, Vec<checker::CheckEvent>) {
    let sink = std::sync::Arc::new(checker::EventLog::new());
    let run = run_native_events(workload, sink.clone());
    (run, sink.take())
}

/// The highest checked tid [`run_native_events`]'s quick-scale
/// execution of `workload` can name: the main/producer/acceptor
/// thread is 1 and workers are `2 ..= workers + 1`, so the bound is
/// the thread count itself. The streaming path sizes its shadow
/// geometry and ring count from this *before* the run, where the
/// replay path derives the same thing from the finished trace
/// ([`checker::geometry_for_trace`]).
fn native_tid_bound(workload: NativeWorkload) -> usize {
    use workloads::table::Scale;
    match workload {
        NativeWorkload::Pfscan => {
            workloads::benchmarks::pfscan::Params::scaled(Scale::quick()).workers + 1
        }
        NativeWorkload::Handoff => workloads::benchmarks::handoff::Params::default().consumers + 1,
        NativeWorkload::Pbzip2 => {
            workloads::benchmarks::pbzip2::Params::scaled(Scale::quick()).workers + 1
        }
        NativeWorkload::Aget => {
            workloads::benchmarks::aget::Params::scaled(Scale::quick()).workers + 1
        }
        NativeWorkload::Dillo => {
            workloads::benchmarks::dillo::Params::scaled(Scale::quick()).workers + 1
        }
        NativeWorkload::Fftw => {
            workloads::benchmarks::fftw::Params::scaled(Scale::quick()).workers + 1
        }
        NativeWorkload::Stunnel => {
            workloads::benchmarks::stunnel::Params::scaled(Scale::quick()).workers + 1
        }
    }
}

/// Judges a [`checker::CheckEvent`] trace with the selected engine,
/// returning the engine's name and its deduplicated conflicts. The
/// trace may have been recorded seconds ago by [`native_trace`] or
/// read back from a `--trace-out` file in a different process — the
/// verdict is a function of the trace alone.
pub fn judge_trace(
    trace: &[checker::CheckEvent],
    kind: DetectorKind,
) -> (&'static str, Vec<checker::Conflict>) {
    use sharc_checker::CheckBackend as _;
    match kind {
        DetectorKind::Sharc => {
            // Size the exact shadow to the widest tid the trace
            // names: a 300-thread stunnel run replays on a 5-shard
            // geometry, while narrow traces keep the 1-shard default.
            let mut backend =
                checker::BitmapBackend::with_geometry(checker::geometry_for_trace(trace));
            let raw = checker::replay(trace, &mut backend);
            ("sharc", dedup_conflicts(raw))
        }
        DetectorKind::Eraser => {
            let mut backend = detectors::BaselineBackend::new(detectors::Eraser::new());
            let raw = checker::replay(trace, &mut backend);
            (backend.name(), dedup_conflicts(raw))
        }
        DetectorKind::Vc => {
            let mut backend = detectors::BaselineBackend::new(detectors::VcDetector::new());
            let raw = checker::replay(trace, &mut backend);
            (backend.name(), dedup_conflicts(raw))
        }
    }
}

/// [`judge_trace`], replayed by [`checker::ParallelReplay`] over
/// `jobs` region-sharded workers instead of the sequential fold.
/// Verdicts are bit-identical to [`judge_trace`]'s for every engine
/// (the 256-tid `forall!` differential pins this); only wall-clock
/// changes. `jobs <= 1` falls back to the sequential path.
pub fn judge_trace_jobs(
    trace: &[checker::CheckEvent],
    kind: DetectorKind,
    jobs: usize,
) -> (&'static str, Vec<checker::Conflict>) {
    use sharc_checker::CheckBackend as _;
    if jobs <= 1 {
        return judge_trace(trace, kind);
    }
    let engine = checker::ParallelReplay::new(jobs);
    match kind {
        DetectorKind::Sharc => {
            let geom = checker::geometry_for_trace(trace);
            let raw = engine.replay(trace, move || {
                Box::new(checker::BitmapBackend::with_geometry(geom)) as _
            });
            ("sharc", dedup_conflicts(raw))
        }
        DetectorKind::Eraser => {
            let name = detectors::BaselineBackend::new(detectors::Eraser::new()).name();
            let raw = engine.replay(trace, || {
                Box::new(detectors::BaselineBackend::new(detectors::Eraser::new())) as _
            });
            (name, dedup_conflicts(raw))
        }
        DetectorKind::Vc => {
            let name = detectors::BaselineBackend::new(detectors::VcDetector::new()).name();
            let raw = engine.replay(trace, || {
                Box::new(detectors::BaselineBackend::new(detectors::VcDetector::new())) as _
            });
            (name, dedup_conflicts(raw))
        }
    }
}

/// Writes a trace file: the binary v4 format of [`checker::btrace`]
/// when the path ends in `.sbt`, the offline text format of
/// [`checker::trace`] otherwise.
pub fn write_trace_file(
    path: &std::path::Path,
    events: &[checker::CheckEvent],
) -> std::io::Result<()> {
    if path.extension().is_some_and(|e| e == "sbt") {
        std::fs::write(path, checker::to_binary(events))
    } else {
        std::fs::write(path, checker::trace::to_text(events))
    }
}

/// Reads a trace written by [`write_trace_file`] (or by hand — the
/// text format is line-oriented). The format is sniffed from the
/// file's first bytes, not its name: the binary v4 magic decodes
/// through [`checker::BinaryTraceReader`], anything else parses as
/// v1–v3 text.
pub fn read_trace_file(path: &std::path::Path) -> Result<Vec<checker::CheckEvent>, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    if checker::is_binary_trace(&bytes) {
        return checker::parse_binary(&bytes);
    }
    let text = String::from_utf8(bytes)
        .map_err(|_| format!("{}: neither a binary trace nor UTF-8 text", path.display()))?;
    checker::trace::parse_text(&text)
}

/// What `sharc trace info` prints: the format and a content summary
/// of one trace file, computed without judging it.
#[derive(Debug)]
pub struct TraceInfo {
    /// `"text"` or `"binary"`.
    pub format: &'static str,
    /// Format version: 1–3 for text, 4 for binary.
    pub version: u32,
    /// File size in bytes.
    pub bytes: u64,
    /// Decoded event count.
    pub events: usize,
    /// Widest tid the trace names (0 if it names none).
    pub max_tid: u32,
    /// One past the highest granule any event touches (0 if none).
    pub granule_span: usize,
    /// `(keyword, count)` for every event kind that occurs, in
    /// vocabulary order.
    pub counts: Vec<(&'static str, usize)>,
}

/// Summarizes the trace file at `path`: sniffs text vs binary by
/// magic, decodes it, and tallies per-kind event counts.
pub fn trace_file_info(path: &std::path::Path) -> Result<TraceInfo, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let file_bytes = bytes.len() as u64;
    let (format, version, events) = if checker::is_binary_trace(&bytes) {
        let reader = checker::BinaryTraceReader::new(&bytes)?;
        let version = reader.version() as u32;
        ("binary", version, reader.decode()?)
    } else {
        let text = String::from_utf8(bytes)
            .map_err(|_| format!("{}: neither a binary trace nor UTF-8 text", path.display()))?;
        // Header-less event lines are the original v1 vocabulary.
        let version = text
            .lines()
            .find_map(|l| l.trim().strip_prefix("# sharc-trace v"))
            .and_then(|v| v.trim().parse::<u32>().ok())
            .unwrap_or(1);
        ("text", version, checker::trace::parse_text(&text)?)
    };
    const VOCABULARY: [&str; 14] = [
        "read", "write", "rread", "rwrite", "locked", "cast", "rcast", "rfree", "acquire",
        "release", "fork", "join", "exit", "alloc",
    ];
    let mut tally = [0usize; VOCABULARY.len()];
    for e in &events {
        let kw = checker::event_keyword(e);
        let slot = VOCABULARY
            .iter()
            .position(|&k| k == kw)
            .expect("keyword is in the vocabulary");
        tally[slot] += 1;
    }
    Ok(TraceInfo {
        format,
        version,
        bytes: file_bytes,
        events: events.len(),
        max_tid: checker::max_trace_tid(&events),
        granule_span: checker::trace_granule_span(&events),
        counts: VOCABULARY
            .iter()
            .zip(tally)
            .filter(|&(_, n)| n > 0)
            .map(|(&k, n)| (k, n))
            .collect(),
    })
}

/// Runs `workload` once with real threads, recording its
/// [`checker::CheckEvent`] trace, and judges that single execution
/// with `kind`. For [`DetectorKind::Sharc`] the trace is replayed
/// through [`checker::BitmapBackend`] — the same engine that ran
/// inline during the execution, so its verdict mirrors the native
/// conflict count.
pub fn run_native_with_detector(workload: NativeWorkload, kind: DetectorKind) -> NativeDetectorRun {
    let (run, trace) = native_trace(workload);
    let (detector, conflicts) = judge_trace(&trace, kind);
    NativeDetectorRun {
        run,
        events: trace.len(),
        detector,
        conflicts,
    }
}

/// The default per-ring buffer capacity of the streaming path
/// (`--ring-cap`): small enough that a long stunnel round drains
/// hundreds of times, large enough that drains amortize.
pub const DEFAULT_RING_CAP: usize = 4096;

/// A native execution judged *online*: the workload ran with a
/// [`checker::StreamingSink`] attached, so the verdict was produced
/// concurrently with the run inside a fixed memory budget — no full
/// trace ever existed.
#[derive(Debug)]
pub struct StreamingRun {
    /// The workload's run record (checksum, access counters, sizes).
    pub run: workloads::table::NativeRun,
    /// The engine's name, for output headers.
    pub detector: &'static str,
    /// Deduplicated conflicts from the incremental fold.
    pub conflicts: Vec<checker::Conflict>,
    /// Ring/drain counters: events recorded and drained, collect
    /// passes, peak resident events, and the configured budget.
    pub stats: checker::StreamStats,
}

/// Runs `workload` once with real threads, feeding the selected
/// engine *during* the run through a [`checker::StreamingSink`] of
/// one ring per thread with `ring_cap` events each. The verdict
/// matches [`run_native_with_detector`]'s replay of the same
/// execution order event for event (both folds run
/// [`checker::apply_event`] over the same linearization); what
/// changes is memory — peak resident events stay under
/// `2 × ring_cap × rings` regardless of run length.
pub fn run_native_streaming(
    workload: NativeWorkload,
    kind: DetectorKind,
    ring_cap: usize,
) -> StreamingRun {
    use sharc_checker::CheckBackend as _;
    let bound = native_tid_bound(workload);
    let (detector, backend): (&'static str, Box<dyn checker::CheckBackend + Send>) = match kind {
        DetectorKind::Sharc => (
            "sharc",
            Box::new(checker::BitmapBackend::with_geometry(
                checker::ShadowGeometry::for_threads(bound),
            )),
        ),
        DetectorKind::Eraser => {
            let b = detectors::BaselineBackend::new(detectors::Eraser::new());
            (b.name(), Box::new(b))
        }
        DetectorKind::Vc => {
            let b = detectors::BaselineBackend::new(detectors::VcDetector::new());
            (b.name(), Box::new(b))
        }
    };
    // One ring per thread (tids are 1-based, ring 0 takes Alloc).
    let sink = std::sync::Arc::new(checker::StreamingSink::new(bound + 1, ring_cap, backend));
    let run = run_native_events(workload, sink.clone());
    let (raw, stats) = sink.finish();
    StreamingRun {
        run,
        detector,
        conflicts: dedup_conflicts(raw),
        stats,
    }
}

/// The most common imports for users of the crate.
pub mod prelude {
    pub use crate::{
        check, check_and_run, explain_elision, judge_trace, judge_trace_jobs, native_trace,
        read_trace_file, run, run_full_checks, run_native_events, run_native_streaming,
        run_native_with_detector, run_with_detector, trace_file_info, write_trace_file,
        CheckedProgram, DetectorKind, DetectorRun, NativeDetectorRun, NativeWorkload, RunConfig,
        RunOutcome, StreamingRun, TraceInfo, DEFAULT_RING_CAP,
    };
    pub use minic::{Diagnostic, Severity};
    pub use sharc_interp::{ConflictKind, ExitStatus, SchedPolicy};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_check_and_run() {
        let out = check_and_run(
            "t.c",
            "void main() { print(41 + 1); }",
            RunConfig::default(),
        )
        .unwrap();
        assert_eq!(out.output, vec!["42"]);
    }

    #[test]
    fn native_handoff_splits_sharc_from_eraser() {
        // The acceptance criterion for the event spine: one *native*
        // execution, judged through the same CheckBackend interface,
        // with SharC silent and Eraser false-positiving on the
        // ownership transfer.
        let sharc = run_native_with_detector(NativeWorkload::Handoff, DetectorKind::Sharc);
        assert!(sharc.conflicts.is_empty(), "{:?}", sharc.conflicts);
        assert!(sharc.events > 0);
        let eraser = run_native_with_detector(NativeWorkload::Handoff, DetectorKind::Eraser);
        assert!(!eraser.conflicts.is_empty(), "Eraser cannot see the cast");
        assert_eq!(eraser.detector, "eraser-lockset");
    }

    #[test]
    fn pbzip2_trace_survives_the_file_round_trip_with_verdicts_intact() {
        // The offline spine end to end: record a native pbzip2 run,
        // write the trace to disk, read it back in (as `sharc replay`
        // would in another process), and check the §6.2 split is a
        // property of the file — SharC clean, Eraser false-positive.
        let (run, trace) = native_trace(NativeWorkload::Pbzip2);
        assert_eq!(run.conflicts, 0);
        let path =
            std::env::temp_dir().join(format!("sharc-trace-test-{}.txt", std::process::id()));
        write_trace_file(&path, &trace).expect("trace written");
        let reread = read_trace_file(&path).expect("trace parses");
        std::fs::remove_file(&path).ok();
        assert_eq!(reread, trace, "the file is the execution");
        let (name, sharc) = judge_trace(&reread, DetectorKind::Sharc);
        assert_eq!(name, "sharc");
        assert!(sharc.is_empty(), "{sharc:?}");
        let (_, eraser) = judge_trace(&reread, DetectorKind::Eraser);
        assert!(!eraser.is_empty(), "Eraser misses the per-block casts");
    }

    #[test]
    fn native_pfscan_is_clean_under_sharc() {
        let r = run_native_with_detector(NativeWorkload::Pfscan, DetectorKind::Sharc);
        assert!(r.conflicts.is_empty(), "{:?}", r.conflicts);
        // The scans ride the ranged path now, so the trace is far
        // *shorter* than the checked-access count — one event per
        // buffer sweep, not per word.
        assert!(r.run.checked > 0 && r.events > 0);
        assert!(
            (r.events as u64) < r.run.checked,
            "ranged events compress the trace ({} events, {} checked)",
            r.events,
            r.run.checked
        );
    }

    #[test]
    fn native_aget_splits_sharc_from_eraser() {
        // Table 1 row 2 through the facade: the same download
        // execution is clean under SharC (the workers' lifetimes end
        // before main's verification sweep) and a false positive
        // under Eraser (the buffer is never lock-protected).
        let sharc = run_native_with_detector(NativeWorkload::Aget, DetectorKind::Sharc);
        assert!(sharc.conflicts.is_empty(), "{:?}", sharc.conflicts);
        assert!(sharc.events > 0);
        let eraser = run_native_with_detector(NativeWorkload::Aget, DetectorKind::Eraser);
        assert!(!eraser.conflicts.is_empty(), "Eraser has no lifetime model");
    }

    #[test]
    fn native_stunnel_wide_fleet_splits_sharc_from_eraser() {
        // The acceptance criterion for the wide-tid spine: one
        // 100+-thread stunnel execution recorded once, judged by
        // every engine. The replay geometry is sized from the trace
        // itself (the widest tid it names), so SharC keeps exact
        // identities across all shards and stays clean; Eraser
        // false-positives on the handshake hand-offs.
        let (run, trace) = native_trace(NativeWorkload::Stunnel);
        assert!(run.threads > 100, "fleet width: {} threads", run.threads);
        assert_eq!(run.conflicts, 0);
        assert!(
            trace.iter().any(|e| matches!(
                e,
                checker::CheckEvent::RangeWrite { tid, .. } if *tid > 63
            )),
            "checked tids must cross the first shard boundary"
        );
        let (_, sharc) = judge_trace(&trace, DetectorKind::Sharc);
        assert!(sharc.is_empty(), "{sharc:?}");
        let (_, eraser) = judge_trace(&trace, DetectorKind::Eraser);
        assert!(!eraser.is_empty(), "Eraser misses the wide hand-offs");
        let (_, vc) = judge_trace(&trace, DetectorKind::Vc);
        assert!(vc.is_empty(), "the session lock orders every hand-off");
    }

    #[test]
    fn native_dillo_and_fftw_are_on_the_spine() {
        for w in [NativeWorkload::Dillo, NativeWorkload::Fftw] {
            let sharc = run_native_with_detector(w, DetectorKind::Sharc);
            assert!(sharc.conflicts.is_empty(), "{w:?}: {:?}", sharc.conflicts);
            assert!(sharc.events > 0);
            let eraser = run_native_with_detector(w, DetectorKind::Eraser);
            assert!(
                !eraser.conflicts.is_empty(),
                "{w:?}: Eraser misses the transfer"
            );
        }
    }

    #[test]
    fn streaming_handoff_agrees_with_replay_inside_the_budget() {
        // The online path end to end: same §6.2 split as the replay
        // path (SharC clean, Eraser false-positives on the transfer),
        // produced concurrently with the run, with peak resident
        // events bounded by the ring budget.
        let sharc = run_native_streaming(NativeWorkload::Handoff, DetectorKind::Sharc, 64);
        assert!(sharc.conflicts.is_empty(), "{:?}", sharc.conflicts);
        assert!(sharc.stats.recorded > 0);
        assert_eq!(sharc.stats.drained, sharc.stats.recorded);
        assert!(
            sharc.stats.peak_resident <= sharc.stats.ring_budget,
            "peak {} over budget {}",
            sharc.stats.peak_resident,
            sharc.stats.ring_budget
        );
        let eraser = run_native_streaming(NativeWorkload::Handoff, DetectorKind::Eraser, 64);
        assert!(!eraser.conflicts.is_empty(), "Eraser cannot see the cast");
        assert_eq!(eraser.detector, "eraser-lockset");
    }

    #[test]
    fn facade_surfaces_check_errors() {
        let checked = check("t.c", "int private * dynamic g;").unwrap();
        assert!(checked.diags.has_errors());
        assert!(run(&checked, RunConfig::default()).is_err());
    }
}
