//! # SharC — checking data sharing strategies for multithreaded C
//!
//! A from-scratch Rust reproduction of *SharC: Checking Data Sharing
//! Strategies for Multithreaded C* (Anderson, Gay, Ennals, Brewer —
//! PLDI 2008).
//!
//! SharC lets a programmer declare, with lightweight type qualifiers,
//! how each object is shared between threads — `private`, `readonly`,
//! `locked(l)`, `racy`, or `dynamic` — then verifies the declaration
//! with a mix of static analysis and runtime checks. Objects may move
//! between modes with a *sharing cast* whose safety is checked by
//! reference counting.
//!
//! This crate is the facade over the workspace:
//!
//! | crate | paper section | contents |
//! |---|---|---|
//! | [`minic`] | — | the C-like language (lexer, parser, AST, qualifiers) |
//! | [`core`] (`sharc-core`) | §2, §4.1 | elaboration, sharing analysis, checker, instrumentation |
//! | [`interp`] (`sharc-interp`) | §3, §4.2 | the VM executing checked programs; the formal core calculus |
//! | [`runtime`] (`sharc-runtime`) | §4.2–4.3 | native-thread shadow memory, lock logs, reference counting |
//! | [`detectors`] (`sharc-detectors`) | §6.2 | Eraser-lockset and vector-clock baselines |
//! | [`workloads`] (`sharc-workloads`) | §5 | the six Table 1 benchmarks |
//!
//! ## Quick start
//!
//! ```
//! use sharc::prelude::*;
//!
//! let src = r#"
//!     void worker(int * d) { *d = *d + 1; }
//!     void main() {
//!         int * p;
//!         p = new(int);
//!         spawn(worker, p);
//!         spawn(worker, p);
//!         join_all();
//!     }
//! "#;
//!
//! // The pipeline: parse -> infer sharing modes -> check -> instrument.
//! let checked = sharc::check("racy.c", src)?;
//! assert!(!checked.diags.has_errors());
//!
//! // The thread argument was inferred `dynamic`, so its accesses are
//! // checked at runtime — and the two unsynchronized writers race:
//! let outcome = sharc::run(&checked, RunConfig::default())?;
//! assert!(!outcome.reports.is_empty());
//! println!("{}", outcome.reports[0]);
//! // read/write conflict(0x...):
//! //   who(2) *d @ racy.c: 2
//! //   last(3) *d @ racy.c: 2
//! # Ok::<(), minic::Diagnostic>(())
//! ```

pub use minic;
pub use sharc_core as core;
pub use sharc_detectors as detectors;
pub use sharc_interp as interp;
pub use sharc_runtime as runtime;
pub use sharc_workloads as workloads;

pub use sharc_core::CheckedProgram;
pub use sharc_interp::{ConflictReport, RunOutcome};

/// VM configuration re-exported as the run configuration.
pub type RunConfig = sharc_interp::VmConfig;

/// Runs the full SharC front-end: parse, elaborate, infer sharing
/// modes, check, and build the instrumentation table.
///
/// # Errors
///
/// Returns the first syntax/layout diagnostic. Sharing-mode errors do
/// not abort: inspect [`CheckedProgram::diags`] (they come with the
/// tool's sharing-cast suggestions).
pub fn check(name: &str, src: &str) -> Result<CheckedProgram, minic::Diagnostic> {
    sharc_core::compile(name, src)
}

/// Executes a checked program on the VM with SharC's runtime checks.
///
/// # Errors
///
/// Returns a diagnostic if the program contains constructs the VM
/// cannot execute (e.g. struct-by-value parameters) or if `checked`
/// still has hard errors.
pub fn run(
    checked: &CheckedProgram,
    config: RunConfig,
) -> Result<RunOutcome, minic::Diagnostic> {
    if checked.diags.has_errors() {
        let first = checked
            .diags
            .iter()
            .find(|d| d.severity == minic::Severity::Error)
            .expect("has_errors implies an error")
            .clone();
        return Err(first);
    }
    let module = sharc_interp::compile::compile(checked)?;
    Ok(sharc_interp::run(&module, &checked.source_map, config))
}

/// One-call convenience: [`check`] then [`run`].
///
/// # Errors
///
/// Propagates errors from both phases, including sharing-mode errors.
pub fn check_and_run(
    name: &str,
    src: &str,
    config: RunConfig,
) -> Result<RunOutcome, minic::Diagnostic> {
    let checked = check(name, src)?;
    run(&checked, config)
}

/// The most common imports for users of the crate.
pub mod prelude {
    pub use crate::{check, check_and_run, run, CheckedProgram, RunConfig, RunOutcome};
    pub use minic::{Diagnostic, Severity};
    pub use sharc_interp::{ConflictKind, ExitStatus, SchedPolicy};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facade_check_and_run() {
        let out = check_and_run(
            "t.c",
            "void main() { print(41 + 1); }",
            RunConfig::default(),
        )
        .unwrap();
        assert_eq!(out.output, vec!["42"]);
    }

    #[test]
    fn facade_surfaces_check_errors() {
        let checked = check("t.c", "int private * dynamic g;").unwrap();
        assert!(checked.diags.has_errors());
        assert!(run(&checked, RunConfig::default()).is_err());
    }
}
