//! Quickstart: check a multithreaded MiniC program with SharC, watch
//! an unintended race get reported, then fix it with a `locked`
//! annotation and see the clean run.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use sharc::prelude::*;

const RACY: &str = r#"
// counter.c — two workers increment a shared counter, unsynchronized.
void worker(int * d) {
    int i;
    for (i = 0; i < 100; i++) {
        *d = *d + 1;
    }
}

void main() {
    int * counter;
    counter = new(int);
    spawn(worker, counter);
    spawn(worker, counter);
    join_all();
    print(*counter);
}
"#;

const FIXED: &str = r#"
// counter_fixed.c — the same program with the sharing strategy
// declared: the counter is protected by a lock.
struct ctr {
    mutex m;
    int locked(m) v;
};

void worker(struct ctr * c) {
    int i;
    for (i = 0; i < 100; i++) {
        mutex_lock(&c->m);
        c->v = c->v + 1;
        mutex_unlock(&c->m);
    }
}

void main() {
    struct ctr * c = new(struct ctr);
    spawn(worker, c);
    spawn(worker, c);
    join_all();
    mutex_lock(&c->m);
    print(c->v);
    mutex_unlock(&c->m);
}
"#;

fn main() -> Result<(), Diagnostic> {
    println!("== 1. The unannotated program ==\n");
    println!("SharC infers the counter is shared (reachable from two threads),");
    println!("gives it the `dynamic` mode, and checks every access at runtime.\n");

    let checked = sharc::check("counter.c", RACY)?;
    println!(
        "inference: {} qualifier positions, {} dynamic, {} checked access sites\n",
        checked.sharing.stats.n_vars,
        checked.sharing.stats.n_dynamic,
        checked.instr.n_dynamic_sites,
    );

    let out = sharc::run(&checked, RunConfig::default())?;
    println!("conflict reports ({}):\n", out.reports.len());
    for r in out.reports.iter().take(3) {
        println!("{r}\n");
    }

    println!("== 2. With the sharing strategy declared ==\n");
    let checked = sharc::check("counter_fixed.c", FIXED)?;
    assert!(!checked.diags.has_errors(), "{}", checked.render_diags());
    let out = sharc::run(&checked, RunConfig::default())?;
    println!(
        "status: {:?}, reports: {}, output: {:?}",
        out.status,
        out.reports.len(),
        out.output
    );
    println!(
        "lock checks executed: {}, dynamic accesses: {:.1}% of {}",
        out.stats.lock_checks,
        out.stats.dynamic_fraction() * 100.0,
        out.stats.total_accesses
    );
    Ok(())
}
