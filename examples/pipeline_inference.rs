//! Reproduces the paper's §2.1 walkthrough (Figures 1 and 2): the
//! multimedia pipeline program.
//!
//! 1. The *unannotated* program runs; SharC reports the sharing of
//!    `sdata` and of the buffers it points to — the paper's two
//!    example reports.
//! 2. With the two annotations and the two sharing casts of Figure
//!    1's bold lines, the program is clean.
//! 3. We print the fully-inferred program — the paper's Figure 2.
//!
//! ```text
//! cargo run --example pipeline_inference
//! ```

use sharc::prelude::*;

/// Figure 1 without any SharC additions. Each stage processes a
/// fixed number of buffers, then exits.
const UNANNOTATED: &str = r#"
typedef struct stage {
    struct stage * next;
    cond * cv;
    mutex * mut;
    char * sdata;
    void (* fun)(char * fdata);
    int nitems;
} stage_t;

void process(char * fdata) {
    fdata[0] = fdata[0] + 1;
}

void thrFunc(stage_t * d) {
    stage_t * S = d;
    stage_t * nextS = S->next;
    char * ldata;
    int handled;
    handled = 0;
    while (handled < S->nitems) {
        mutex_lock(S->mut);
        while (S->sdata == NULL)
            cond_wait(S->cv, S->mut);
        ldata = S->sdata;
        S->sdata = NULL;
        cond_signal(S->cv);
        mutex_unlock(S->mut);
        S->fun(ldata);
        if (nextS) {
            mutex_lock(nextS->mut);
            while (nextS->sdata)
                cond_wait(nextS->cv, nextS->mut);
            nextS->sdata = ldata;
            cond_signal(nextS->cv);
            mutex_unlock(nextS->mut);
        } else {
            free(ldata);
        }
        handled = handled + 1;
    }
}

void main() {
    stage_t * s2;
    stage_t * s1;
    char * buf;
    int i;
    s2 = new(stage_t);
    s2->mut = new(mutex); s2->cv = new(cond);
    s2->fun = process; s2->next = NULL; s2->nitems = 5;
    s1 = new(stage_t);
    s1->mut = new(mutex); s1->cv = new(cond);
    s1->fun = process; s1->next = s2; s1->nitems = 5;
    spawn(thrFunc, s1);
    spawn(thrFunc, s2);
    for (i = 0; i < 5; i++) {
        buf = newarray(char, 16);
        mutex_lock(s1->mut);
        while (s1->sdata)
            cond_wait(s1->cv, s1->mut);
        s1->sdata = buf;
        cond_signal(s1->cv);
        mutex_unlock(s1->mut);
    }
    join_all();
}
"#;

/// Figure 1 with the two annotations and the sharing casts the tool
/// suggests. Stages are built privately and shared with a cast
/// (readonly fields like `mut` are writable only through a private
/// instance).
const ANNOTATED: &str = r#"
typedef struct stage {
    struct stage * next;
    cond * cv;
    mutex * mut;
    char *locked(mut) sdata;
    void (* fun)(char private * fdata);
    int nitems;
} stage_t;

void process(char private * fdata) {
    fdata[0] = fdata[0] + 1;
}

void thrFunc(stage_t * d) {
    stage_t * S = d;
    stage_t * nextS = S->next;
    char private * ldata;
    int handled;
    int quota;
    handled = 0;
    quota = S->nitems;
    while (handled < quota) {
        mutex_lock(S->mut);
        while (S->sdata == NULL)
            cond_wait(S->cv, S->mut);
        ldata = SCAST(char private *, S->sdata);
        cond_signal(S->cv);
        mutex_unlock(S->mut);
        S->fun(ldata);
        if (nextS) {
            mutex_lock(nextS->mut);
            while (nextS->sdata)
                cond_wait(nextS->cv, nextS->mut);
            nextS->sdata = SCAST(char locked(nextS->mut) *, ldata);
            cond_signal(nextS->cv);
            mutex_unlock(nextS->mut);
        } else {
            free(ldata);
        }
        handled = handled + 1;
    }
}

void main() {
    stage_t private * t2;
    stage_t private * t1;
    char private * buf;
    int i;
    // Build the stages privately (initialization of readonly fields),
    // then publish them with sharing casts.
    t2 = new(stage_t private);
    t2->mut = new(mutex); t2->cv = new(cond);
    t2->fun = process; t2->next = NULL; t2->nitems = 5;
    stage_t * s2 = SCAST(stage_t dynamic *, t2);
    t1 = new(stage_t private);
    t1->mut = new(mutex); t1->cv = new(cond);
    t1->fun = process; t1->next = s2; t1->nitems = 5;
    stage_t * s1 = SCAST(stage_t dynamic *, t1);
    spawn(thrFunc, s1);
    spawn(thrFunc, s2);
    for (i = 0; i < 5; i++) {
        buf = newarray(char private, 16);
        mutex_lock(s1->mut);
        while (s1->sdata)
            cond_wait(s1->cv, s1->mut);
        s1->sdata = SCAST(char locked(s1->mut) *, buf);
        cond_signal(s1->cv);
        mutex_unlock(s1->mut);
    }
    join_all();
}
"#;

fn main() -> Result<(), Diagnostic> {
    println!("== Step 1: the unannotated pipeline (paper Figure 1, plain) ==\n");
    let checked = sharc::check("pipeline_test.c", UNANNOTATED)?;
    println!(
        "inference made {} of {} qualifier positions dynamic.\n",
        checked.sharing.stats.n_dynamic, checked.sharing.stats.n_vars
    );
    if checked.diags.has_errors() {
        println!("static reports:\n{}\n", checked.render_diags());
    } else {
        let out = sharc::run(&checked, RunConfig::default())?;
        println!(
            "runtime reports ({} — SharC assumes all sharing is an error):\n",
            out.reports.len()
        );
        for r in out.reports.iter().take(4) {
            println!("{r}\n");
        }
    }

    println!("== Step 2: annotated, with the suggested sharing casts ==\n");
    let checked = sharc::check("pipeline_test.c", ANNOTATED)?;
    assert!(!checked.diags.has_errors(), "{}", checked.render_diags());
    let out = sharc::run(&checked, RunConfig::default())?;
    println!(
        "status {:?}; reports: {} (the declared strategy holds)\n",
        out.status,
        out.reports.len()
    );

    println!("== Step 3: the fully inferred program (paper Figure 2) ==\n");
    println!("{}", minic::pretty::program(&checked.program));
    Ok(())
}
