// A racy shared counter: SharC infers the counter is dynamic and
// reports the race at runtime.
//   sharc run examples/minic/counter_racy.c
void worker(int * d) {
    int i;
    for (i = 0; i < 100; i++) {
        *d = *d + 1;
    }
}

void main() {
    int * counter;
    counter = new(int);
    spawn(worker, counter);
    spawn(worker, counter);
    join_all();
    print(*counter);
}
