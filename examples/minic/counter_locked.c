// The same counter with its sharing strategy declared: protected by
// a lock. SharC checks the lock is held at every access.
//   sharc run examples/minic/counter_locked.c
struct ctr {
    mutex m;
    int locked(m) v;
};

void worker(struct ctr * c) {
    int i;
    for (i = 0; i < 100; i++) {
        mutex_lock(&c->m);
        c->v = c->v + 1;
        mutex_unlock(&c->m);
    }
}

void main() {
    struct ctr * c = new(struct ctr);
    spawn(worker, c);
    spawn(worker, c);
    join_all();
    mutex_lock(&c->m);
    print(c->v);
    mutex_unlock(&c->m);
}
