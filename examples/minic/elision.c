// Three sharing shapes, side by side, for the elision pass:
//   sharc run examples/minic/elision.c --explain-elision
// A spawn-unique private loop (every check deleted), a
// lock-dominated region (lock checks deleted), and an escaping
// counterexample (the leaked pointer keeps its checks).
int dynamic * leak;

struct ctr {
    mutex m;
    int locked(m) v;
};

void private_loop(int * d) {
    int i;
    for (i = 0; i < 100; i++) {
        *d = *d + 1;
    }
}

void locked_region(struct ctr * c) {
    mutex_lock(&c->m);
    c->v = c->v + 1;
    mutex_unlock(&c->m);
}

void escaping(int * d) {
    leak = d;
    *d = 7;
}

void main() {
    int * p;
    struct ctr * c;
    int * q;
    int t;
    p = new(int);
    t = spawn(private_loop, p);
    join(t);
    c = new(struct ctr);
    t = spawn(locked_region, c);
    join(t);
    q = new(int);
    t = spawn(escaping, q);
    join(t);
}
