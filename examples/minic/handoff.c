// Ownership transfer through a locked slot, with sharing casts on
// both sides — the paper's producer/consumer idiom (§2.1).
//   sharc run examples/minic/handoff.c
struct chan {
    mutex m;
    cond cv;
    int *locked(m) slot;
};

void consumer(struct chan * c) {
    int private * d;
    int got;
    got = 0;
    while (got < 10) {
        mutex_lock(&c->m);
        while (c->slot == NULL)
            cond_wait(&c->cv, &c->m);
        d = SCAST(int private *, c->slot);
        cond_signal(&c->cv);
        mutex_unlock(&c->m);
        // The consumer owns the buffer now: modify, then report.
        *d = *d + 1;
        print(*d);
        free(d);
        got = got + 1;
    }
}

void main() {
    struct chan * c = new(struct chan);
    int private * b;
    int i;
    spawn(consumer, c);
    for (i = 0; i < 10; i++) {
        b = new(int private);
        *b = i * i;
        mutex_lock(&c->m);
        while (c->slot)
            cond_wait(&c->cv, &c->m);
        c->slot = SCAST(int locked(c->m) *, b);
        cond_signal(&c->cv);
        mutex_unlock(&c->m);
    }
    join_all();
}
