//! The native-threads runtime substrate in action: a producer and a
//! consumer exchange buffer ownership through a reference-counted
//! slot, with SharC's shadow memory checking the dynamic-mode queue
//! state and `oneref` sharing casts validating each hand-off —
//! running on real `std::thread` workers.
//!
//! ```text
//! cargo run --example producer_consumer
//! ```

use sharc_runtime::{
    sharing_cast, Arena, LockId, LockRegistry, LpRc, ObjId, RcScheme, ThreadCtx, ThreadId,
};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const ITEMS: usize = 10_000;
const BUFFER_WORDS: usize = 32;

fn main() {
    // Payload arena: item buffers, 16-byte-granule shadow memory.
    let arena: Arc<Arena> = Arc::new(Arena::new(ITEMS.min(64) * BUFFER_WORDS));
    // One reference-counted pointer slot: the hand-off cell.
    let rc = Arc::new(LpRc::new(1, 64, 2));
    let locks = Arc::new(LockRegistry::new(1));
    let slot_lock = LockId(0);
    let done = Arc::new(AtomicBool::new(false));

    let consumer = {
        let arena = Arc::clone(&arena);
        let rc = Arc::clone(&rc);
        let locks = Arc::clone(&locks);
        let done = Arc::clone(&done);
        std::thread::spawn(move || {
            let mut ctx = ThreadCtx::new(ThreadId(2));
            let mut consumed = 0u64;
            let mut casts_ok = 0u64;
            loop {
                locks.lock(&mut ctx, slot_lock);
                ctx.assert_held(slot_lock).expect("lock log");
                let taken = sharing_cast(&*rc, 1, 0);
                locks.unlock(&mut ctx, slot_lock);
                match taken {
                    Ok(Some(obj)) => {
                        casts_ok += 1;
                        // We own the buffer now: private-mode reads.
                        let base = (obj.0 as usize % 64) * BUFFER_WORDS;
                        let mut sum = 0u64;
                        for i in 0..BUFFER_WORDS {
                            sum += arena.read_unchecked(base + i);
                        }
                        consumed += sum;
                        // Release the region's shadow state for reuse.
                        arena.clear_range(base, BUFFER_WORDS);
                    }
                    Ok(None) => {
                        if done.load(Ordering::Acquire) {
                            break;
                        }
                        std::thread::yield_now();
                    }
                    Err(e) => panic!("hand-off violated ownership: {e}"),
                }
            }
            arena.thread_exit(&mut ctx);
            (consumed, casts_ok, ctx.conflicts)
        })
    };

    // Producer: fill a buffer privately, publish it through the slot.
    let mut ctx = ThreadCtx::new(ThreadId(1));
    let mut produced = 0u64;
    for item in 0..ITEMS {
        let obj = ObjId((item % 64) as u32);
        let base = (item % 64) * BUFFER_WORDS;
        for i in 0..BUFFER_WORDS {
            arena.write_unchecked(base + i, (item + i) as u64);
            produced += (item + i) as u64;
        }
        // Wait until the slot is free, then publish.
        loop {
            locks.lock(&mut ctx, slot_lock);
            let free = rc.read_slot(0).is_none();
            if free {
                rc.store(0, 0, Some(obj));
                locks.unlock(&mut ctx, slot_lock);
                break;
            }
            locks.unlock(&mut ctx, slot_lock);
            std::thread::yield_now();
        }
    }
    // Wait for the consumer to drain the final item before signaling.
    while rc.read_slot(0).is_some() {
        std::thread::yield_now();
    }
    done.store(true, Ordering::Release);

    let (consumed, casts_ok, conflicts) = consumer.join().expect("consumer");
    println!("items produced      : {ITEMS}");
    println!("sharing casts passed: {casts_ok}");
    println!("payload checksum    : produced {produced} / consumed {consumed}");
    println!("conflicts observed  : {conflicts}");
    println!(
        "shadow memory       : {} bytes over {} payload bytes ({:.1}%)",
        arena.shadow_bytes(),
        arena.payload_bytes(),
        arena.shadow_bytes() as f64 / arena.payload_bytes() as f64 * 100.0
    );
    assert_eq!(produced, consumed, "every byte transferred exactly once");
    assert_eq!(casts_ok as usize, ITEMS);
}
