//! Compares SharC with the classic dynamic race detectors the paper
//! discusses (§6.2) on three idioms:
//!
//! * an honest race — everyone should report it;
//! * lock-protected sharing — nobody should report;
//! * ownership hand-off — Eraser and even happens-before report a
//!   false positive, while SharC models the transfer with a sharing
//!   cast and stays silent.
//!
//! ```text
//! cargo run --example race_hunt
//! ```

use sharc::prelude::*;
use sharc_detectors::{Detector, Eraser, Event, VcDetector};

fn sharc_reports(src: &str) -> usize {
    let out = sharc::check_and_run("hunt.c", src, RunConfig::default())
        .expect("program must check cleanly");
    out.reports.len()
}

fn main() {
    // --- Idiom 1: an honest race -------------------------------------
    let racy_minic = "
        void worker(int * d) { int i; for (i = 0; i < 40; i++) *d = *d + 1; }
        void main() { int * p; p = new(int);
            spawn(worker, p); spawn(worker, p); join_all(); }";
    let racy_trace = vec![
        Event::Fork { tid: 1, child: 2 },
        Event::Write { tid: 1, loc: 0 },
        Event::Write { tid: 2, loc: 0 },
    ];

    // --- Idiom 2: lock-protected sharing -----------------------------
    let locked_minic = "
        struct c { mutex m; int locked(m) v; };
        void worker(struct c * x) { int i; for (i = 0; i < 40; i++) {
            mutex_lock(&x->m); x->v = x->v + 1; mutex_unlock(&x->m); } }
        void main() { struct c * x = new(struct c);
            spawn(worker, x); spawn(worker, x); join_all(); }";
    let locked_trace = vec![
        Event::Fork { tid: 1, child: 2 },
        Event::Acquire { tid: 1, lock: 9 },
        Event::Write { tid: 1, loc: 0 },
        Event::Release { tid: 1, lock: 9 },
        Event::Acquire { tid: 2, lock: 9 },
        Event::Write { tid: 2, loc: 0 },
        Event::Release { tid: 2, lock: 9 },
    ];

    // --- Idiom 3: ownership hand-off ---------------------------------
    let handoff_minic = "
        struct ch { mutex m; cond cv; int *locked(m) slot; };
        void consumer(struct ch * c) { int private * d; int got; got = 0;
            while (got < 10) {
                mutex_lock(&c->m);
                while (c->slot == NULL) cond_wait(&c->cv, &c->m);
                d = SCAST(int private *, c->slot);
                cond_signal(&c->cv);
                mutex_unlock(&c->m);
                *d = *d + 1; free(d); got = got + 1; } }
        void main() { struct ch * c = new(struct ch); int private * b; int i;
            spawn(consumer, c);
            for (i = 0; i < 10; i++) {
                b = new(int private); *b = i;
                mutex_lock(&c->m);
                while (c->slot) cond_wait(&c->cv, &c->m);
                c->slot = SCAST(int locked(c->m) *, b);
                cond_signal(&c->cv);
                mutex_unlock(&c->m); }
            join_all(); }";
    let handoff_trace = vec![
        Event::Fork { tid: 1, child: 2 },
        // Producer writes under its lock, hands off, consumer uses its
        // own lock: no common lock, no happens-before edge chain.
        Event::Acquire { tid: 1, lock: 1 },
        Event::Write { tid: 1, loc: 0 },
        Event::Release { tid: 1, lock: 1 },
        Event::Acquire { tid: 2, lock: 2 },
        Event::Write { tid: 2, loc: 0 },
        Event::Release { tid: 2, lock: 2 },
        Event::Acquire { tid: 1, lock: 1 },
        Event::Write { tid: 1, loc: 0 },
        Event::Release { tid: 1, lock: 1 },
    ];

    println!(
        "{:<24} {:>8} {:>8} {:>14}",
        "idiom", "eraser", "vclock", "sharc"
    );
    let rows = [
        ("honest race", &racy_trace, racy_minic, true),
        ("lock-protected", &locked_trace, locked_minic, false),
        ("ownership hand-off", &handoff_trace, handoff_minic, false),
    ];
    for (name, trace, minic_src, is_real_race) in rows {
        let eraser = Eraser::new().run(trace).len();
        let vc = VcDetector::new().run(trace).len();
        let sharc = sharc_reports(minic_src);
        println!("{name:<24} {eraser:>8} {vc:>8} {sharc:>14}");
        if !is_real_race {
            assert_eq!(sharc, 0, "SharC must accept the declared strategy");
        } else {
            assert!(sharc > 0, "SharC must catch the honest race");
        }
    }
    println!(
        "\nOnly SharC models ownership transfer directly (the paper's central\n\
         claim): the hand-off row shows the baselines' false positive."
    );
}
